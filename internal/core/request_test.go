package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"modelir/internal/bayes"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

func testLinearModel(t *testing.T) *linear.Model {
	t.Helper()
	m, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testGeoQuery() GeologyQuery {
	return GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
}

// TestRunMatchesLegacyAllFamilies pins the satellite invariant: Run
// results are bit-identical (IDs and scores, ties included) to the
// legacy per-family methods across shard counts 1, 4 and 7, and the
// normalized stats carry the legacy detail shapes.
func TestRunMatchesLegacyAllFamilies(t *testing.T) {
	a := buildArchives(t)
	lm := testLinearModel(t)
	geoQ := testGeoQuery()
	machine := fsm.FireAnts()
	ctx := context.Background()

	for _, shards := range []int{1, 4, 7} {
		e := engineWithArchives(t, shards, a)

		// Linear over tuples, cross-checked against direct evaluation.
		legacy, legacySt, err := e.LinearTopKTuples("gauss", lm, 10)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("linear shards=%d", shards), res.Items, legacy)
		bestID, bestScore := -1, math.Inf(-1)
		for i, p := range a.pts {
			if s, _ := lm.Eval(p); s > bestScore {
				bestID, bestScore = i, s
			}
		}
		if res.Items[0].ID != int64(bestID) || res.Items[0].Score != bestScore {
			t.Fatalf("shards=%d linear top %d/%v, brute force %d/%v",
				shards, res.Items[0].ID, res.Items[0].Score, bestID, bestScore)
		}
		det, ok := res.Stats.Detail.(LinearTupleStats)
		if !ok || det != legacySt {
			t.Fatalf("shards=%d linear detail %+v vs legacy %+v", shards, res.Stats.Detail, legacySt)
		}
		if res.Stats.Kind != KindLinear || res.Stats.Shards != shards ||
			res.Stats.Evaluations != det.Indexed.PointsTouched ||
			res.Stats.Pruned != det.ScanCost-det.Indexed.PointsTouched ||
			res.Stats.Truncated || res.Stats.Wall <= 0 {
			t.Fatalf("shards=%d linear stats %+v", shards, res.Stats)
		}

		// Progressive linear over the scene.
		sLegacy, sLegacySt, err := e.SceneTopK("hps", a.pm, 10)
		if err != nil {
			t.Fatal(err)
		}
		sRes, err := e.Run(ctx, Request{Dataset: "hps", Query: SceneQuery{Model: a.pm}, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("scene shards=%d", shards), sRes.Items, sLegacy)
		if sRes.Stats.Evaluations != sLegacySt.Work() || sRes.Stats.Kind != KindLinear {
			t.Fatalf("shards=%d scene stats %+v vs work %d", shards, sRes.Stats, sLegacySt.Work())
		}

		// Finite-state score and distance ranking.
		fLegacy, fLegacySt, err := e.FSMTopK("weather", machine, 10, FireAntsPrefilter)
		if err != nil {
			t.Fatal(err)
		}
		fRes, err := e.Run(ctx, Request{
			Dataset: "weather",
			Query:   FSMQuery{Machine: machine, Prefilter: FireAntsPrefilter},
			K:       10,
		})
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("fsm shards=%d", shards), fRes.Items, fLegacy)
		if fRes.Stats.Pruned != fLegacySt.RegionsPruned ||
			fRes.Stats.Evaluations != fLegacySt.DaysScanned ||
			fRes.Stats.Kind != KindFiniteState {
			t.Fatalf("shards=%d fsm stats %+v vs legacy %+v", shards, fRes.Stats, fLegacySt)
		}

		dLegacy, err := e.FSMDistanceRank("weather", machine, 5, 8)
		if err != nil {
			t.Fatal(err)
		}
		dRes, err := e.Run(ctx, Request{
			Dataset: "weather",
			Query:   FSMDistanceQuery{Target: machine, Horizon: 8},
			K:       5,
		})
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("fsm-distance shards=%d", shards), dRes.Items, dLegacy)

		// Knowledge over wells (geology).
		gLegacy, gLegacySt, err := e.GeologyTopK("basin", geoQ, 10, GeoPruned)
		if err != nil {
			t.Fatal(err)
		}
		gq := geoQ
		gq.Method = GeoPruned
		gRes, err := e.Run(ctx, Request{Dataset: "basin", Query: gq, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		gGot, err := WellMatches(gRes.Items)
		if err != nil {
			t.Fatal(err)
		}
		if len(gGot) != len(gLegacy) {
			t.Fatalf("geology shards=%d: %d vs %d wells", shards, len(gGot), len(gLegacy))
		}
		for i := range gLegacy {
			if gGot[i].Well != gLegacy[i].Well || gGot[i].Score != gLegacy[i].Score {
				t.Fatalf("geology shards=%d pos %d: %+v vs %+v", shards, i, gGot[i], gLegacy[i])
			}
		}
		if gRes.Stats.Evaluations != gLegacySt.UnaryEvals+gLegacySt.PairEvals ||
			gRes.Stats.Kind != KindKnowledge {
			t.Fatalf("geology shards=%d stats %+v vs legacy %+v", shards, gRes.Stats, gLegacySt)
		}

		// Knowledge over scene tiles.
		kLegacy, kLegacySt, err := e.KnowledgeTopKTiles("hps", HPSTileRules(), 10)
		if err != nil {
			t.Fatal(err)
		}
		kRes, err := e.Run(ctx, Request{Dataset: "hps", Query: KnowledgeQuery{Rules: HPSTileRules()}, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("knowledge shards=%d", shards), kRes.Items, kLegacy)
		if kRes.Stats.Examined != kLegacySt.TilesScored || kRes.Stats.Kind != KindKnowledge {
			t.Fatalf("knowledge shards=%d stats %+v vs legacy %+v", shards, kRes.Stats, kLegacySt)
		}
	}
}

// TestRunWorkerOverride pins that the worker-pool width changes
// scheduling only, never results.
func TestRunWorkerOverride(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	ctx := context.Background()
	var want []topk.Item
	for _, workers := range []int{1, 2, 5} {
		res, err := e.Run(ctx, Request{
			Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 8, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res.Items
			continue
		}
		itemsEqual(t, fmt.Sprintf("workers=%d", workers), res.Items, want)
	}
}

func TestRunValidation(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 2, a)
	lm := testLinearModel(t)
	ctx := context.Background()

	cases := []struct {
		name string
		req  Request
	}{
		{"nil query", Request{Dataset: "gauss"}},
		{"negative K", Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: -1}},
		{"negative budget", Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, Budget: -1}},
		{"negative workers", Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, Workers: -1}},
		{"nil linear model", Request{Dataset: "gauss", Query: LinearQuery{}}},
		{"nil scene model", Request{Dataset: "hps", Query: SceneQuery{}}},
		{"nil machine", Request{Dataset: "weather", Query: FSMQuery{}}},
		{"nil distance target", Request{Dataset: "weather", Query: FSMDistanceQuery{}}},
		{"empty geology sequence", Request{Dataset: "basin", Query: GeologyQuery{}}},
		{"bad geology method", Request{Dataset: "basin", Query: GeologyQuery{
			Sequence: []synth.Lithology{synth.Shale}, Method: GeologyMethod(99),
		}}},
		{"empty rule set", Request{Dataset: "hps", Query: KnowledgeQuery{}}},
		{"unknown tuples", Request{Dataset: "nope", Query: LinearQuery{Model: lm}}},
		{"unknown scene", Request{Dataset: "nope", Query: SceneQuery{Model: a.pm}}},
		{"unknown series", Request{Dataset: "nope", Query: FSMQuery{Machine: fsm.FireAnts()}}},
		{"unknown wells", Request{Dataset: "nope", Query: testGeoQuery()}},
	}
	for _, c := range cases {
		if _, err := e.Run(ctx, c.req); err == nil {
			t.Fatalf("%s: want error", c.name)
		}
		// RunProgressive rejects malformed requests synchronously;
		// dataset and model errors surface on the stream instead.
		ch, err := e.RunProgressive(ctx, c.req)
		if err != nil {
			continue
		}
		var last Snapshot
		for s := range ch {
			last = s
		}
		if last.Err == nil {
			t.Fatalf("%s: progressive stream ended without error", c.name)
		}
	}

	nan := math.NaN()
	if _, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, MinScore: &nan}); err == nil {
		t.Fatal("NaN MinScore: want error")
	}

	// K defaulting: zero means DefaultK on the unified path.
	res, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != DefaultK {
		t.Fatalf("defaulted K returned %d items, want %d", len(res.Items), DefaultK)
	}
	// Legacy wrappers still reject k < 1 rather than defaulting.
	if _, _, err := e.LinearTopKTuples("gauss", lm, 0); !errors.Is(err, topk.ErrBadCapacity) {
		t.Fatalf("legacy k=0: got %v, want ErrBadCapacity", err)
	}
	if _, _, err := e.FSMTopK("weather", fsm.FireAnts(), 0, nil); !errors.Is(err, topk.ErrBadCapacity) {
		t.Fatalf("legacy fsm k=0: got %v, want ErrBadCapacity", err)
	}
}

// TestRunExpiredDeadlineAllFamilies pins the cancellation contract at
// the entry: a request whose deadline has already passed returns
// ctx.Err() on every family without doing archive work.
func TestRunExpiredDeadlineAllFamilies(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	queries := map[string]Request{
		"linear":    {Dataset: "gauss", Query: LinearQuery{Model: lm}},
		"scene":     {Dataset: "hps", Query: SceneQuery{Model: a.pm}},
		"fsm":       {Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}},
		"fsm-dist":  {Dataset: "weather", Query: FSMDistanceQuery{Target: fsm.FireAnts(), Horizon: 6}},
		"geology":   {Dataset: "basin", Query: testGeoQuery()},
		"knowledge": {Dataset: "hps", Query: KnowledgeQuery{Rules: HPSTileRules()}},
	}
	for name, req := range queries {
		if _, err := e.Run(ctx, req); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: got %v, want DeadlineExceeded", name, err)
		}
	}
}

// TestRunCancelMidQueryFSM proves deterministically that cancellation
// aborts shard work mid-scan: a prefilter blocks the scan until the
// test cancels, and the per-region context check must then surface
// ctx.Err() long before the archive is exhausted.
func TestRunCancelMidQueryFSM(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	started := make(chan struct{})
	var once func()
	once = func() { close(started); once = func() {} }
	pre := func(s synth.DrySpellStats) bool {
		once()
		<-ctx.Done() // park the scan until the test cancels
		return true
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Run(ctx, Request{
			Dataset: "weather",
			Query:   FSMQuery{Machine: fsm.FireAnts(), Prefilter: pre},
			K:       5,
			Workers: 1, // single worker: the park blocks the whole scan
		})
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled query did not return")
	}
}

// TestRunCancelMidQueryKnowledge is the deterministic mid-scan abort
// for the tile path: a rule membership cancels the context from inside
// the first scored tile, and the per-tile check must stop the scan.
func TestRunCancelMidQueryKnowledge(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 2, a)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rules := bayes.NewRuleSet().Require("b4.mean", cancellingMembership{cancel: cancel})
	_, err := e.Run(ctx, Request{Dataset: "hps", Query: KnowledgeQuery{Rules: rules}, K: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

type cancellingMembership struct{ cancel context.CancelFunc }

func (m cancellingMembership) Grade(float64) float64 {
	m.cancel()
	return 1
}

// TestRunProgressiveSceneSnapshots pins the streaming contract on a
// multi-level scene query: at least two snapshots, monotonically
// improving, ending in a Final snapshot identical to Run's result.
// Shards: 1 makes the emission sequence deterministic.
func TestRunProgressiveSceneSnapshots(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 1, a)
	req := Request{Dataset: "hps", Query: SceneQuery{Model: a.pm}, K: 10}

	want, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := e.RunProgressive(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for s := range ch {
		snaps = append(snaps, s)
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want >= 2", len(snaps))
	}
	fin := snaps[len(snaps)-1]
	if !fin.Final || fin.Err != nil {
		t.Fatalf("terminal snapshot %+v", fin)
	}
	itemsEqual(t, "final snapshot", fin.Items, want.Items)
	if fin.Stats.Evaluations != want.Stats.Evaluations || fin.Stats.Kind != want.Stats.Kind {
		t.Fatalf("final stats %+v vs run %+v", fin.Stats, want.Stats)
	}
	// Snapshots improve monotonically: the worst retained score never
	// drops, items stay best-first, Seq increments, and at least one
	// strict improvement separates the first snapshot from the final
	// answer on a multi-level query.
	for i, s := range snaps {
		if s.Seq != i {
			t.Fatalf("snapshot %d has Seq %d", i, s.Seq)
		}
		for j := 1; j < len(s.Items); j++ {
			prev, cur := s.Items[j-1], s.Items[j]
			if cur.Score > prev.Score || (cur.Score == prev.Score && cur.ID < prev.ID) {
				t.Fatalf("snapshot %d not best-first at %d", i, j)
			}
		}
		if i == 0 {
			continue
		}
		prev, cur := snaps[i-1], s
		if len(cur.Items) < len(prev.Items) {
			t.Fatalf("snapshot %d shrank: %d -> %d items", i, len(prev.Items), len(cur.Items))
		}
		if len(prev.Items) > 0 && len(cur.Items) == len(prev.Items) {
			if cur.Items[len(cur.Items)-1].Score < prev.Items[len(prev.Items)-1].Score {
				t.Fatalf("snapshot %d regressed: kth score %v -> %v", i,
					prev.Items[len(prev.Items)-1].Score, cur.Items[len(cur.Items)-1].Score)
			}
		}
	}
	first := snaps[0]
	if len(first.Items) == len(fin.Items) {
		same := true
		for i := range first.Items {
			if first.Items[i] != fin.Items[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("first snapshot already equals the final answer; no improvement streamed")
		}
	}
}

// TestRunProgressiveAllFamiliesStream smoke-tests that every family
// streams and terminates with Run's exact result.
func TestRunProgressiveAllFamiliesStream(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	gq := testGeoQuery()
	gq.Method = GeoDP
	reqs := map[string]Request{
		"linear":    {Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 8},
		"scene":     {Dataset: "hps", Query: SceneQuery{Model: a.pm}, K: 8},
		"fsm":       {Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 8},
		"fsm-dist":  {Dataset: "weather", Query: FSMDistanceQuery{Target: fsm.FireAnts(), Horizon: 6}, K: 8},
		"geology":   {Dataset: "basin", Query: gq, K: 8},
		"knowledge": {Dataset: "hps", Query: KnowledgeQuery{Rules: HPSTileRules()}, K: 8},
	}
	for name, req := range reqs {
		want, err := e.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		ch, err := e.RunProgressive(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		var last Snapshot
		n := 0
		for s := range ch {
			last = s
			n++
		}
		if n < 1 || !last.Final || last.Err != nil {
			t.Fatalf("%s: %d snapshots, terminal %+v", name, n, last)
		}
		itemsEqual(t, name+" progressive final", last.Items, want.Items)
	}
}

// TestRunProgressiveConsumerCancel checks that abandoning a stream and
// cancelling the context terminates the query instead of leaking its
// workers.
func TestRunProgressiveConsumerCancel(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 2, a)
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := e.RunProgressive(ctx, Request{Dataset: "hps", Query: SceneQuery{Model: a.pm}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	first, ok := <-ch
	if !ok {
		t.Fatal("stream closed before first snapshot")
	}
	if first.Err != nil {
		t.Fatalf("first snapshot errored: %v", first.Err)
	}
	cancel()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case s, ok := <-ch:
			if !ok {
				return // stream terminated: workers released
			}
			if s.Final && s.Err != nil && !errors.Is(s.Err, context.Canceled) {
				t.Fatalf("terminal error %v, want context.Canceled", s.Err)
			}
		case <-deadline:
			t.Fatal("stream did not terminate after cancel")
		}
	}
}

// TestRunProgressiveErrorStream pins that request failures surface as a
// single terminal snapshot carrying the error.
func TestRunProgressiveErrorStream(t *testing.T) {
	e := NewEngine()
	lm := testLinearModel(t)
	ch, err := e.RunProgressive(context.Background(), Request{Dataset: "nope", Query: LinearQuery{Model: lm}})
	if err != nil {
		t.Fatal(err)
	}
	var snaps []Snapshot
	for s := range ch {
		snaps = append(snaps, s)
	}
	if len(snaps) != 1 || !snaps[0].Final || !errors.Is(snaps[0].Err, ErrUnknownDataset) {
		t.Fatalf("snapshots %+v", snaps)
	}
}

// TestRunBudget pins the budget contract: a tiny budget truncates (the
// scan stops early, flagged, no error), a generous budget changes
// nothing.
func TestRunBudget(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	ctx := context.Background()

	full, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10, Budget: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !tiny.Stats.Truncated {
		t.Fatalf("budget 8 not truncated: %+v", tiny.Stats)
	}
	if tiny.Stats.Evaluations >= full.Stats.Evaluations {
		t.Fatalf("budgeted run did %d evals, unbudgeted %d", tiny.Stats.Evaluations, full.Stats.Evaluations)
	}
	// Pruned must credit screening only: examined + pruned +
	// budget-skipped partition the archive exactly.
	tdet, ok := tiny.Stats.Detail.(LinearTupleStats)
	if !ok {
		t.Fatalf("detail %T", tiny.Stats.Detail)
	}
	if tdet.Indexed.PointsSkippedByBudget == 0 {
		t.Fatal("truncated run recorded no budget skips")
	}
	if tiny.Stats.Examined+tiny.Stats.Pruned+tdet.Indexed.PointsSkippedByBudget != tdet.ScanCost {
		t.Fatalf("examined %d + pruned %d + skipped %d != scan cost %d",
			tiny.Stats.Examined, tiny.Stats.Pruned, tdet.Indexed.PointsSkippedByBudget, tdet.ScanCost)
	}
	big, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10, Budget: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if big.Stats.Truncated {
		t.Fatal("generous budget flagged truncated")
	}
	itemsEqual(t, "generous budget", big.Items, full.Items)

	// Same contract on a scan-shaped family.
	fullF, err := e.Run(ctx, Request{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	tinyF, err := e.Run(ctx, Request{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 10, Budget: 400})
	if err != nil {
		t.Fatal(err)
	}
	if !tinyF.Stats.Truncated || tinyF.Stats.Evaluations >= fullF.Stats.Evaluations {
		t.Fatalf("fsm budget: tiny %+v vs full %+v", tinyF.Stats, fullF.Stats)
	}
	// Examined must count regions actually scanned, not the dataset
	// total: a truncated scan inspected strictly fewer candidates.
	if tinyF.Stats.Examined >= fullF.Stats.Examined {
		t.Fatalf("fsm budget examined %d >= full %d", tinyF.Stats.Examined, fullF.Stats.Examined)
	}
}

// TestRunMinScore pins the score-floor contract: results equal the
// unrestricted run filtered at the floor (inclusive), on a family that
// consults the screening bound (linear) and one that post-filters only
// (fsm).
func TestRunMinScore(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	ctx := context.Background()

	full, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Items) < 4 {
		t.Fatalf("fixture too small: %d items", len(full.Items))
	}
	floor := full.Items[3].Score // keeps exactly the top 4 (scores are distinct here)
	res, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10, MinScore: &floor})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]topk.Item, 0, 4)
	for _, it := range full.Items {
		if it.Score >= floor {
			want = append(want, it)
		}
	}
	itemsEqual(t, "linear minscore", res.Items, want)

	fullF, err := e.Run(ctx, Request{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(fullF.Items) == 0 {
		t.Fatal("fsm fixture returned no items")
	}
	mid := fullF.Items[len(fullF.Items)/2].Score
	resF, err := e.Run(ctx, Request{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 10, MinScore: &mid})
	if err != nil {
		t.Fatal(err)
	}
	wantF := make([]topk.Item, 0, len(fullF.Items))
	for _, it := range fullF.Items {
		if it.Score >= mid {
			wantF = append(wantF, it)
		}
	}
	itemsEqual(t, "fsm minscore", resF.Items, wantF)
}
