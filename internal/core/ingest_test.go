// Live-ingest pins: base+delta equivalence across all query families
// and shard counts, appender coalescing, reserve/commit registration,
// snapshot consistency under concurrent appends, and per-dataset cache
// invalidation under -race traffic.

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/segment"
	"modelir/internal/synth"
)

// TestAppendTuplesAtExplicitBase pins the cluster-ingest primitive: a
// delta appended at an explicit global base beyond the watermark scores
// with IDs at that base (the row space may hold holes), an overlapping
// base is refused, and the pinned set survives compaction untouched —
// compacting would reassign the IDs the base encodes.
func TestAppendTuplesAtExplicitBase(t *testing.T) {
	pts, err := synth.GaussianTuples(9, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := synth.GaussianTuples(10, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{Shards: 2})
	if err := e.AddTuples("g", pts); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendTuplesAt("g", 20, tail); err != nil {
		t.Fatal(err)
	}

	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Dataset: "g", Query: LinearQuery{Model: lm}, K: 50}
	res, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Items) != 15 {
		t.Fatalf("items = %d, want 15 (10 base + 5 delta)", len(res.Items))
	}
	for _, it := range res.Items {
		if !(it.ID < 10 || (it.ID >= 20 && it.ID < 25)) {
			t.Fatalf("item ID %d outside [0,10) ∪ [20,25)", it.ID)
		}
	}

	// Bases at or below existing rows would collide with assigned IDs.
	if err := e.AppendTuplesAt("g", 15, tail); err == nil {
		t.Fatal("overlapping base accepted")
	}
	if err := e.AppendTuplesAt("g", -1, tail); err == nil {
		t.Fatal("negative base accepted")
	}

	// The explicit base pinned the set: compaction must leave the delta
	// (and every ID) exactly where it is.
	e.Compact()
	for _, ds := range e.Datasets() {
		if ds.Name == "g" && ds.Deltas != 1 {
			t.Fatalf("deltas after Compact = %d, want 1 (pinned set must not compact)", ds.Deltas)
		}
	}
	again, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Items {
		if again.Items[i] != res.Items[i] {
			t.Fatalf("answers changed across Compact at pos %d", i)
		}
	}
}

// appendArchivesInChunks registers a prefix of every appendable
// archive and feeds the remainder through Append* in several chunks,
// leaving the engine with live delta segments. Scenes are registered
// whole (not appendable). The 4/5 base keeps delta volume below both
// compaction triggers so the deltas deterministically survive until
// the equivalence queries run.
func appendArchivesInChunks(t *testing.T, shards int, a testArchives) *Engine {
	t.Helper()
	e := NewEngineWith(Options{Shards: shards})
	basePts, baseRegions, baseWells := len(a.pts)*4/5, len(a.arch)*4/5, len(a.wells)*4/5
	if err := e.AddTuples("gauss", a.pts[:basePts]); err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("hps", a.scene); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("weather", a.arch[:baseRegions]); err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("basin", a.wells[:baseWells]); err != nil {
		t.Fatal(err)
	}
	chunked := func(n, base int, appendChunk func(lo, hi int) error) {
		t.Helper()
		rest := n - base
		for c := 0; c < 3; c++ {
			lo := base + rest*c/3
			hi := base + rest*(c+1)/3
			if lo == hi {
				continue
			}
			if err := appendChunk(lo, hi); err != nil {
				t.Fatal(err)
			}
		}
	}
	chunked(len(a.pts), basePts, func(lo, hi int) error { return e.AppendTuples("gauss", a.pts[lo:hi]) })
	chunked(len(a.arch), baseRegions, func(lo, hi int) error { return e.AppendSeries("weather", a.arch[lo:hi]) })
	chunked(len(a.wells), baseWells, func(lo, hi int) error { return e.AppendWells("basin", a.wells[lo:hi]) })
	return e
}

// TestDeltaEquivalenceAllFamilies pins the tentpole invariant: an
// engine that grew its datasets through appends (base + live delta
// segments) answers every query family bit-identically to an engine
// that registered the full archives up front — for shard counts 1, 4
// and 7, both before and after compaction.
func TestDeltaEquivalenceAllFamilies(t *testing.T) {
	a := buildArchives(t)
	for _, shards := range []int{1, 4, 7} {
		full := engineWithArchives(t, shards, a)
		want := runSixFamilies(t, full, a.pm)

		grown := appendArchivesInChunks(t, shards, a)
		anyDeltas := false
		for _, ds := range grown.Datasets() {
			if ds.Deltas > 0 {
				anyDeltas = true
			}
		}
		if !anyDeltas {
			t.Fatalf("shards=%d: background compaction consumed every delta before the query ran", shards)
		}
		compareSix(t, fmt.Sprintf("shards=%d deltas", shards), runSixFamilies(t, grown, a.pm), want)

		// Compaction folds the deltas back into base shards without
		// changing a single answer.
		grown.Compact()
		for _, ds := range grown.Datasets() {
			if ds.Deltas != 0 {
				t.Fatalf("shards=%d: %s/%s still holds %d deltas after Compact", shards, ds.Kind, ds.Name, ds.Deltas)
			}
		}
		compareSix(t, fmt.Sprintf("shards=%d compacted", shards), runSixFamilies(t, grown, a.pm), want)
		if err := grown.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAppendValidation pins the append error surface: unknown datasets
// and empty payloads are rejected without side effects.
func TestAppendValidation(t *testing.T) {
	e := NewEngine()
	if err := e.AppendTuples("nope", [][]float64{{1}}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("append to unknown dataset: %v", err)
	}
	if err := e.AppendSeries("nope", []synth.RegionSeries{{}}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("append series to unknown dataset: %v", err)
	}
	if err := e.AppendWells("nope", []synth.WellLog{{}}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("append wells to unknown dataset: %v", err)
	}
	if err := e.AddTuples("t", [][]float64{{1, 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.AppendTuples("t", nil); err == nil {
		t.Fatal("empty append accepted")
	}
	if ds := e.Datasets(); ds[0].Gen != 1 {
		t.Fatalf("failed appends bumped the generation to %d", ds[0].Gen)
	}
}

// TestAppenderCoalesces pins the batching appender's size window:
// twenty concurrent five-row appends with a size threshold of exactly
// one hundred rows coalesce into ONE delta segment and ONE generation
// bump — deterministically, because the hundredth row triggers the
// only flush (the time window is parked an hour out).
func TestAppenderCoalesces(t *testing.T) {
	base, err := synth.GaussianTuples(3, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 100 delta rows on a 400-row base stay under both compaction
	// triggers, so the one delta segment deterministically survives.
	e := NewEngine()
	if err := e.AddTuples("gauss", base); err != nil {
		t.Fatal(err)
	}
	ap := NewAppender(e, AppenderOptions{MaxRows: 100, MaxWait: time.Hour})
	defer ap.Close()

	var wg sync.WaitGroup
	errs := make([]error, 20)
	for g := 0; g < 20; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rows := make([][]float64, 5)
			for i := range rows {
				rows[i] = []float64{float64(g), float64(i), 0}
			}
			errs[g] = ap.AppendTuples(context.Background(), "gauss", rows)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("appender %d: %v", g, err)
		}
	}
	ds := e.Datasets()[0]
	if ds.Rows != len(base)+100 {
		t.Fatalf("rows = %d, want %d", ds.Rows, len(base)+100)
	}
	if ds.Gen != 2 {
		t.Fatalf("gen = %d, want 2 (one coalesced flush)", ds.Gen)
	}
	if ds.Deltas != 1 {
		t.Fatalf("deltas = %d, want 1", ds.Deltas)
	}
}

// TestAppenderErrorsAndClose pins the per-caller error contract: a
// flush against an unknown dataset fails every waiter in that window
// with the engine's error, and appends after Close are rejected.
func TestAppenderErrorsAndClose(t *testing.T) {
	e := NewEngine()
	ap := NewAppender(e, AppenderOptions{MaxRows: 4, MaxWait: time.Hour})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = ap.AppendTuples(context.Background(), "ghost", [][]float64{{1}, {2}})
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if !errors.Is(err, ErrUnknownDataset) {
			t.Fatalf("waiter %d: %v, want ErrUnknownDataset", g, err)
		}
	}
	ap.Close()
	if err := ap.AppendTuples(context.Background(), "ghost", [][]float64{{1}}); !errors.Is(err, ErrAppenderClosed) {
		t.Fatalf("append after Close: %v", err)
	}
	ap.Close() // idempotent
}

// TestAppenderContextCancel pins the waiting contract: a caller whose
// context dies while its window is still open stops waiting with the
// context's error, and the rows still flush.
func TestAppenderContextCancel(t *testing.T) {
	e := NewEngine()
	if err := e.AddTuples("gauss", [][]float64{{1}}); err != nil {
		t.Fatal(err)
	}
	ap := NewAppender(e, AppenderOptions{MaxRows: 1 << 30, MaxWait: time.Hour})
	defer ap.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ap.AppendTuples(ctx, "gauss", [][]float64{{2}}) }()
	// Cancel only once the row is pending, so the wait (not the
	// enqueue) is what the cancellation interrupts.
	for {
		ap.mu.Lock()
		pending := len(ap.pend)
		ap.mu.Unlock()
		if pending > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	ap.Flush()
	if rows := e.Datasets()[0].Rows; rows != 2 {
		t.Fatalf("rows after flush = %d, want 2 (cancel abandons the wait, not the rows)", rows)
	}
}

// TestConcurrentDuplicateRegistration pins the reserve/commit
// registration path: many goroutines racing to register the same name
// produce exactly one success and ErrDuplicateDataset everywhere else
// — the expensive set build never runs under the engine lock, and no
// goroutine's build overwrites another's.
func TestConcurrentDuplicateRegistration(t *testing.T) {
	pts, err := synth.GaussianTuples(7, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{Shards: 4})
	const racers = 8
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for g := 0; g < racers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs[g] = e.AddTuples("dup", pts)
		}(g)
	}
	wg.Wait()
	wins := 0
	for g, err := range errs {
		switch {
		case err == nil:
			wins++
		case !errors.Is(err, ErrDuplicateDataset):
			t.Fatalf("racer %d: %v, want ErrDuplicateDataset", g, err)
		}
	}
	if wins != 1 {
		t.Fatalf("%d racers won, want exactly 1", wins)
	}
	if ds := e.Datasets(); len(ds) != 1 || ds[0].Rows != len(pts) {
		t.Fatalf("registered state torn: %+v", ds)
	}
	if e.Epoch() != 1 {
		t.Fatalf("epoch = %d after 1 successful registration", e.Epoch())
	}
}

// TestSnapshotDuringIngest pins snapshot consistency under traffic:
// snapshots racing a stream of appends each capture a consistent pre-
// or post-append world — the restored row count always lands on an
// append boundary, and the restored engine answers bit-identically to
// a fresh engine built from exactly that prefix.
func TestSnapshotDuringIngest(t *testing.T) {
	pts, err := synth.GaussianTuples(31, 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	const base, chunk, chunks = 2000, 100, 10
	e := NewEngineWith(Options{Shards: 4})
	if err := e.AddTuples("gauss", pts[:base]); err != nil {
		t.Fatal(err)
	}
	lm := testLinearModel(t)
	ctx := context.Background()

	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for c := 0; c < chunks; c++ {
			lo := base + c*chunk
			if err := e.AppendTuples("gauss", pts[lo:lo+chunk]); err != nil {
				t.Errorf("append %d: %v", c, err)
				return
			}
		}
	}()

	snaps := 0
	for running := true; running; {
		select {
		case <-writerDone:
			running = false
		default:
		}
		dir, err := segment.NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Snapshot(ctx, dir); err != nil {
			t.Fatal(err)
		}
		re, err := OpenSnapshot(dir, RestoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		rows := re.Datasets()[0].Rows
		if rows < base || rows > len(pts) || (rows-base)%chunk != 0 {
			t.Fatalf("snapshot %d captured a torn world: %d rows", snaps, rows)
		}
		ref := NewEngineWith(Options{Shards: 4})
		if err := ref.AddTuples("gauss", pts[:rows]); err != nil {
			t.Fatal(err)
		}
		req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10}
		got, err := re.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Run(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("snapshot %d (%d rows)", snaps, rows), got.Items, want.Items)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		snaps++
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPerDatasetInvalidationUnderTraffic is the -race soak for the
// cache-invalidation bug this PR fixes: a hammer of appends to one
// dataset must not evict another dataset's cache entries, and a query
// issued after an append returns must see the appended rows — never a
// stale cached answer.
func TestPerDatasetInvalidationUnderTraffic(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	defer e.Close()
	lm := testLinearModel(t)
	ctx := context.Background()
	weatherReq := Request{Dataset: "weather", Query: FSMDistanceQuery{Target: fsm.FireAnts(), Horizon: 6}, K: 5}

	// Warm weather's entry, then hammer gauss while weather keeps
	// serving hits.
	if _, err := e.Run(ctx, weatherReq); err != nil {
		t.Fatal(err)
	}
	const writers, iters = 4, 25
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				row := []float64{float64(w), float64(i), 1}
				if err := e.AppendTuples("gauss", [][]float64{row}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := e.Run(ctx, weatherReq)
			if err != nil {
				t.Errorf("weather reader: %v", err)
				return
			}
			if !res.Stats.Cache.Hit {
				t.Error("append traffic on gauss evicted weather's cache entry")
				return
			}
		}
	}()
	// Foreground reader: every gauss query must reflect at least the
	// appends that completed before it started (generations monotone).
	var lastGen uint64
	for i := 0; i < 50; i++ {
		gen := e.Datasets()[0].Gen // sorted by name: basin first — find gauss
		for _, ds := range e.Datasets() {
			if ds.Name == "gauss" {
				gen = ds.Gen
			}
		}
		if gen < lastGen {
			t.Fatalf("gauss generation went backwards: %d -> %d", lastGen, gen)
		}
		lastGen = gen
		if _, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Plant a row that dominates every score and require the very next
	// query to surface it: the freshness half of the invalidation
	// contract. testLinearModel's coefficients are {1, -0.5, 2}.
	if _, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 1}); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, ds := range e.Datasets() {
		if ds.Name == "gauss" {
			rows = ds.Rows
		}
	}
	planted := []float64{1e9, 0, 1e9}
	if err := e.AppendTuples("gauss", [][]float64{planted}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cache.Hit {
		t.Fatal("stale cached answer served after append returned")
	}
	if len(res.Items) != 1 || res.Items[0].ID != int64(rows) {
		t.Fatalf("planted max row (id %d) missing: got %+v", rows, res.Items)
	}
}

// TestCompactionPreservesCache pins that compaction is invisible to
// the cache: it changes layout, not content, so it leaves the
// generation alone and warm entries keep serving.
func TestCompactionPreservesCache(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	defer e.Close()
	lm := testLinearModel(t)
	ctx := context.Background()
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10}

	if err := e.AppendTuples("gauss", a.pts[:3]); err != nil {
		t.Fatal(err)
	}
	cold, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	e.Compact()
	warm, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Cache.Hit {
		t.Fatal("compaction evicted a still-valid entry")
	}
	itemsEqual(t, "post-compaction hit", warm.Items, cold.Items)
	for _, ds := range e.Datasets() {
		if ds.Name == "gauss" && ds.Deltas != 0 {
			t.Fatalf("gauss still holds %d deltas after Compact", ds.Deltas)
		}
	}
}

// TestBackgroundCompaction pins the automatic trigger: enough small
// appends eventually fold into base shards without any explicit
// Compact call, and answers are unchanged throughout.
func TestBackgroundCompaction(t *testing.T) {
	pts, err := synth.GaussianTuples(17, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{Shards: 4})
	if err := e.AddTuples("gauss", pts[:100]); err != nil {
		t.Fatal(err)
	}
	for lo := 100; lo < len(pts); lo += 50 {
		if err := e.AppendTuples("gauss", pts[lo:lo+50]); err != nil {
			t.Fatal(err)
		}
	}
	// Close waits for in-flight compactions; after it, at least one
	// trigger must have fired (6 appends on a 100-row base crosses both
	// the segment-count and the row-fraction thresholds).
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	ds := e.Datasets()[0]
	if ds.Rows != len(pts) {
		t.Fatalf("rows = %d, want %d", ds.Rows, len(pts))
	}
	if ds.Deltas >= 6 {
		t.Fatalf("background compaction never fired: %d deltas after 6 appends", ds.Deltas)
	}
}
