// Appender: the batching front end for live ingest. Concurrent small
// appends to the same dataset coalesce into ONE delta segment per
// flush window — without batching, a thousand single-row appends make
// a thousand delta segments (and a thousand generation bumps that each
// invalidate the dataset's cached results); with it, they make a
// handful. Flush windows close on size (MaxRows pending) or time
// (MaxWait after the first pending row), whichever comes first, and
// every caller observes its own rows' outcome through a per-caller
// error channel: Append* returns only after the flush containing its
// rows has been applied to the engine (or ctx gave up waiting).

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"modelir/internal/synth"
)

// Appender defaults.
const (
	// DefaultAppenderMaxRows is the size flush threshold.
	DefaultAppenderMaxRows = 256
	// DefaultAppenderMaxWait is the time flush threshold, measured
	// from the first row entering an empty buffer.
	DefaultAppenderMaxWait = 2 * time.Millisecond
)

// ErrAppenderClosed reports an append after Close.
var ErrAppenderClosed = errors.New("core: appender closed")

// AppenderOptions tunes flush windows.
type AppenderOptions struct {
	// MaxRows flushes a dataset's pending buffer as soon as it holds
	// this many rows; 0 means DefaultAppenderMaxRows.
	MaxRows int
	// MaxWait flushes a non-empty pending buffer this long after its
	// first row arrived; 0 means DefaultAppenderMaxWait.
	MaxWait time.Duration
}

// Appender coalesces concurrent appends into per-dataset delta
// segments. Safe for concurrent use; one Appender per engine is the
// intended shape (modelird owns one for its /append endpoint).
type Appender struct {
	e   *Engine
	opt AppenderOptions

	mu     sync.Mutex
	closed bool
	pend   map[dsName]*pendingAppend
}

// pendingAppend is one dataset's open flush window: the rows
// accumulated so far plus the waiters to notify with the flush's
// outcome. Exactly one of the row slices is in use (keyed by kind).
type pendingAppend struct {
	timer   *time.Timer
	tuples  [][]float64
	series  []synth.RegionSeries
	wells   []synth.WellLog
	rows    int
	waiters []chan error
}

// NewAppender returns a batching appender over e.
func NewAppender(e *Engine, opt AppenderOptions) *Appender {
	if opt.MaxRows <= 0 {
		opt.MaxRows = DefaultAppenderMaxRows
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = DefaultAppenderMaxWait
	}
	return &Appender{e: e, opt: opt, pend: make(map[dsName]*pendingAppend)}
}

// AppendTuples enqueues rows for dataset name and blocks until the
// flush containing them has been applied (returning that flush's
// outcome) or ctx is done (the rows still flush; the caller just
// stops waiting).
func (a *Appender) AppendTuples(ctx context.Context, name string, rows [][]float64) error {
	if len(rows) == 0 {
		return errors.New("core: empty tuple append")
	}
	return a.enqueue(ctx, dsName{dsTuples, name}, len(rows), func(p *pendingAppend) {
		p.tuples = append(p.tuples, rows...)
	})
}

// AppendSeries enqueues regions for dataset name; see AppendTuples for
// the waiting contract.
func (a *Appender) AppendSeries(ctx context.Context, name string, rs []synth.RegionSeries) error {
	if len(rs) == 0 {
		return errors.New("core: empty series append")
	}
	return a.enqueue(ctx, dsName{dsSeries, name}, len(rs), func(p *pendingAppend) {
		p.series = append(p.series, rs...)
	})
}

// AppendWells enqueues wells for dataset name; see AppendTuples for
// the waiting contract.
func (a *Appender) AppendWells(ctx context.Context, name string, ws []synth.WellLog) error {
	if len(ws) == 0 {
		return errors.New("core: empty well append")
	}
	return a.enqueue(ctx, dsName{dsWells, name}, len(ws), func(p *pendingAppend) {
		p.wells = append(p.wells, ws...)
	})
}

func (a *Appender) enqueue(ctx context.Context, key dsName, n int, add func(*pendingAppend)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return ErrAppenderClosed
	}
	p := a.pend[key]
	if p == nil {
		p = &pendingAppend{}
		a.pend[key] = p
		// First rows into an empty buffer arm the time window.
		p.timer = time.AfterFunc(a.opt.MaxWait, func() { a.flushKey(key) })
	}
	add(p)
	p.rows += n
	ch := make(chan error, 1)
	p.waiters = append(p.waiters, ch)
	full := p.rows >= a.opt.MaxRows
	a.mu.Unlock()
	if full {
		a.flushKey(key)
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// flushKey closes key's window (if still open — the size path and the
// timer can race; the loser finds nothing) and applies its rows as one
// engine append, broadcasting the outcome to every waiter.
func (a *Appender) flushKey(key dsName) {
	a.mu.Lock()
	p := a.pend[key]
	delete(a.pend, key)
	a.mu.Unlock()
	if p == nil {
		return
	}
	p.timer.Stop()
	var err error
	switch key.kind {
	case dsTuples:
		err = a.e.AppendTuples(key.name, p.tuples)
	case dsSeries:
		err = a.e.AppendSeries(key.name, p.series)
	case dsWells:
		err = a.e.AppendWells(key.name, p.wells)
	default:
		err = fmt.Errorf("core: appender: unappendable dataset kind %d", key.kind)
	}
	for _, ch := range p.waiters {
		ch <- err // buffered; never blocks
	}
}

// Flush applies every open window now, regardless of thresholds.
func (a *Appender) Flush() {
	a.mu.Lock()
	keys := make([]dsName, 0, len(a.pend))
	for key := range a.pend {
		keys = append(keys, key)
	}
	a.mu.Unlock()
	for _, key := range keys {
		a.flushKey(key)
	}
}

// Close flushes everything pending and rejects further appends.
// Idempotent.
func (a *Appender) Close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.Flush()
}
