package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"modelir/internal/fsm"
	"modelir/internal/linear"
)

// normStats strips the two fields that legitimately differ between
// executions of the same request: wall time and the cache-counter
// sample. Everything else must be bit-identical.
func normStats(st QueryStats) QueryStats {
	st.Wall = 0
	st.Cache = CacheInfo{}
	return st
}

func statsEqual(t *testing.T, label string, got, want QueryStats) {
	t.Helper()
	if !reflect.DeepEqual(normStats(got), normStats(want)) {
		t.Fatalf("%s: stats differ modulo Wall/Cache:\n got %+v\nwant %+v",
			label, normStats(got), normStats(want))
	}
}

// resultsEqual pins full Result equivalence: items (IDs, scores, and
// geology strata payloads) plus stats modulo Wall/Cache.
func resultsEqual(t *testing.T, label string, got, want Result) {
	t.Helper()
	itemsEqual(t, label, got.Items, want.Items)
	for i := range want.Items {
		if !reflect.DeepEqual(got.Items[i].Payload, want.Items[i].Payload) {
			t.Fatalf("%s pos %d: payload %v vs %v", label, i, got.Items[i].Payload, want.Items[i].Payload)
		}
	}
	statsEqual(t, label, got.Stats, want.Stats)
}

// batchRequests is the all-families request mix the equivalence pins
// run: every query type, plus option variations (K, MinScore).
func batchRequests(a testArchives, lm *linear.Model) []Request {
	machine := fsm.FireAnts()
	min := 0.5
	gq := testGeoQuery()
	gq.Method = GeoPruned
	return []Request{
		{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10},
		{Dataset: "hps", Query: SceneQuery{Model: a.pm}, K: 7},
		{Dataset: "weather", Query: FSMQuery{Machine: machine}, K: 10},
		{Dataset: "weather", Query: FSMDistanceQuery{Target: machine, Horizon: 6}, K: 5},
		{Dataset: "basin", Query: gq, K: 10},
		{Dataset: "hps", Query: KnowledgeQuery{Rules: HPSTileRules()}, K: 10},
		{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 3, MinScore: &min},
	}
}

// TestBatchMatchesRun pins the tentpole equivalence: every request in
// a RunBatch returns items, scores, and stats (modulo Wall and the
// cache-counter sample) bit-identical to a solo Engine.Run of the same
// request, across all five query families and shard counts 1, 4 and 7.
// Both engines run with the cache disabled so the pin exercises the
// shared-pool batch execution path, not cache serving.
func TestBatchMatchesRun(t *testing.T) {
	a := buildArchives(t)
	lm := testLinearModel(t)
	ctx := context.Background()
	for _, shards := range []int{1, 4, 7} {
		// Two identical engines: the batch must not be able to warm
		// anything the solo runs then consume.
		be := engineWithArchivesOpts(t, Options{Shards: shards, CacheEntries: -1}, a)
		se := engineWithArchivesOpts(t, Options{Shards: shards, CacheEntries: -1}, a)
		reqs := batchRequests(a, lm)
		batch, err := be.RunBatch(ctx, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) != len(reqs) {
			t.Fatalf("shards=%d: %d batch results for %d requests", shards, len(batch), len(reqs))
		}
		for i, req := range reqs {
			label := fmt.Sprintf("shards=%d req=%d (%T)", shards, i, req.Query)
			if batch[i].Err != nil {
				t.Fatalf("%s: %v", label, batch[i].Err)
			}
			solo, err := se.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, label, batch[i].Result, solo)
			if batch[i].Result.Stats.Wall <= 0 {
				t.Fatalf("%s: missing wall time", label)
			}
		}
	}
}

// TestBatchDedupSharesOneExecution pins phase-1 dedup: identical
// cacheable requests collapse onto one leader, every follower receives
// an equal result in its own slices, and exactly one entry lands in the
// cache. Single execution itself is pinned white-box below
// (TestBatchDedupSingleFlight).
func TestBatchDedupSharesOneExecution(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}
	batch, err := e.RunBatch(context.Background(), []Request{req, req, req})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		resultsEqual(t, fmt.Sprintf("follower %d", i), batch[i].Result, batch[0].Result)
	}
	// Three probes missed (one per slot), one execution, one entry.
	st := e.CacheStats()
	if st.Misses != 3 || st.Hits != 0 || st.Entries != 1 {
		t.Fatalf("cache counters after dedup batch: %+v", st)
	}
	// A repeat batch is pure cache traffic.
	if _, err := e.RunBatch(context.Background(), []Request{req, req, req}); err != nil {
		t.Fatal(err)
	}
	if st := e.CacheStats(); st.Hits != 3 {
		t.Fatalf("repeat batch hits %d, want 3", st.Hits)
	}
	// Followers own their slices: corrupting one result must not leak
	// into its batchmates.
	batch[1].Result.Items[0].Score = -12345
	if batch[0].Result.Items[0].Score == -12345 || batch[2].Result.Items[0].Score == -12345 {
		t.Fatal("batch results share item slices")
	}
}

// TestBatchDedupSingleFlight proves duplicates execute once: every
// execution ends in exactly one cache store, so three identical
// requests in one batch must leave the store counter at one.
func TestBatchDedupSingleFlight(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchivesOpts(t, Options{Shards: 1}, a)
	lm := testLinearModel(t)
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}
	batch, err := e.RunBatch(context.Background(), []Request{req, req, req})
	if err != nil {
		t.Fatal(err)
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("slot %d: %v", i, br.Err)
		}
	}
	if st := e.CacheStats(); st.Stores != 1 || st.Entries != 1 || st.Misses != 3 {
		t.Fatalf("cache counters %+v: want exactly one store for three duplicates", st)
	}
}

// TestBatchServesFromCache pins phase-1 cache probing: a batch issued
// after a solo Run of the same request serves it from cache,
// bit-identically.
func TestBatchServesFromCache(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}
	solo, err := e.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := e.RunBatch(context.Background(), []Request{req})
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil {
		t.Fatal(batch[0].Err)
	}
	if !batch[0].Result.Stats.Cache.Hit {
		t.Fatal("batched repeat of a solo request missed the cache")
	}
	resultsEqual(t, "cache-served batch entry", batch[0].Result, solo)
}

// TestBatchErrorIsolation pins that malformed and failing requests
// poison only their own slots.
func TestBatchErrorIsolation(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	reqs := []Request{
		{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5},
		{Dataset: "gauss", Query: nil},                         // validation error
		{Dataset: "nope", Query: LinearQuery{Model: lm}, K: 5}, // plan error
		{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 5},
	}
	batch, err := e.RunBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if batch[0].Err != nil || batch[3].Err != nil {
		t.Fatalf("healthy requests errored: %v, %v", batch[0].Err, batch[3].Err)
	}
	if batch[1].Err == nil {
		t.Fatal("nil-query request passed validation")
	}
	if !errors.Is(batch[2].Err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: got %v", batch[2].Err)
	}
	if len(batch[0].Result.Items) == 0 || len(batch[3].Result.Items) == 0 {
		t.Fatal("healthy requests returned no items")
	}
}

// TestBatchCancellation pins that a cancelled batch reports the bare
// context error both as the batch error and in every unserved slot.
func TestBatchCancellation(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchivesOpts(t, Options{Shards: 4, CacheEntries: -1}, a)
	lm := testLinearModel(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-dead context: every slot must carry ctx.Err()
	batch, err := e.RunBatch(ctx, batchRequests(a, lm))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch error %v, want context.Canceled", err)
	}
	for i, br := range batch {
		if !errors.Is(br.Err, context.Canceled) {
			t.Fatalf("slot %d: %v, want context.Canceled", i, br.Err)
		}
	}
}

// TestBatchEmptyAndNilCtx pins the degenerate inputs.
func TestBatchEmptyAndNilCtx(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 2, a)
	out, err := e.RunBatch(context.Background(), nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(out))
	}
	lm := testLinearModel(t)
	//nolint:staticcheck // nil ctx is part of the API contract under test
	batch, err := e.RunBatch(nil, []Request{{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 3}})
	if err != nil || batch[0].Err != nil {
		t.Fatalf("nil-ctx batch: %v / %v", err, batch[0].Err)
	}
}

// engineWithArchivesOpts is engineWithArchives with full Options
// control (cache, admission) for the serving-layer tests.
func engineWithArchivesOpts(t *testing.T, opt Options, a testArchives) *Engine {
	t.Helper()
	e := NewEngineWith(opt)
	if err := e.AddTuples("gauss", a.pts); err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("hps", a.scene); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("weather", a.arch); err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("basin", a.wells); err != nil {
		t.Fatal(err)
	}
	return e
}
