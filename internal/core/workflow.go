package core

import (
	"errors"
	"fmt"

	"modelir/internal/linear"
)

// Workflow realizes the Fig. 5 loop for linear models:
//
//  1. develop a hypothetical decision model;
//  2. fit the model to calibration data;
//  3. use the model to retrieve data satisfying it;
//  4. use the retrieved data to revise the model;
//  5. apply the revised model to a much bigger data set;
//  6. repeat 3-4 as necessary.
//
// The workflow accumulates calibration rows across revisions, so each
// Revise call refits on everything seen so far — the paper's "generalize
// the model through learning and relevance feedback".
type Workflow struct {
	attrs []string
	xs    [][]float64
	ys    []float64
	model *linear.Model
	// Revisions counts completed fits (calibration + revisions).
	Revisions int
}

// NewWorkflow starts a workflow for models over the given attributes.
func NewWorkflow(attrs []string) (*Workflow, error) {
	if len(attrs) == 0 {
		return nil, errors.New("core: workflow needs attributes")
	}
	a := make([]string, len(attrs))
	copy(a, attrs)
	return &Workflow{attrs: a}, nil
}

// Hypothesize installs an expert-provided starting model (step 1) without
// any data. Optional: Calibrate can also create the first model.
func (w *Workflow) Hypothesize(m *linear.Model) error {
	if m == nil {
		return errors.New("core: nil hypothesis")
	}
	if len(m.Coeffs) != len(w.attrs) {
		return fmt.Errorf("core: hypothesis has %d terms, workflow %d attributes",
			len(m.Coeffs), len(w.attrs))
	}
	w.model = m
	return nil
}

// Calibrate fits the initial model from training rows (step 2).
func (w *Workflow) Calibrate(xs [][]float64, ys []float64) (*linear.Model, error) {
	if err := w.absorb(xs, ys); err != nil {
		return nil, err
	}
	return w.refit()
}

// Revise folds newly retrieved-and-verified rows into the calibration
// set and refits (step 4). This is the cheap-loop the paper says existing
// systems make expensive: the archive-side retrieval is indexed, so each
// revision costs a refit plus an indexed query rather than a full scan.
func (w *Workflow) Revise(xs [][]float64, ys []float64) (*linear.Model, error) {
	if w.model == nil && len(w.xs) == 0 {
		return nil, errors.New("core: revise before calibrate")
	}
	if err := w.absorb(xs, ys); err != nil {
		return nil, err
	}
	return w.refit()
}

// Model returns the current model (nil before calibration).
func (w *Workflow) Model() *linear.Model { return w.model }

// TrainingSize returns the accumulated calibration rows.
func (w *Workflow) TrainingSize() int { return len(w.xs) }

func (w *Workflow) absorb(xs [][]float64, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return errors.New("core: bad calibration rows")
	}
	for i, x := range xs {
		if len(x) != len(w.attrs) {
			return fmt.Errorf("core: row %d has %d values, want %d", i, len(x), len(w.attrs))
		}
	}
	w.xs = append(w.xs, xs...)
	w.ys = append(w.ys, ys...)
	return nil
}

func (w *Workflow) refit() (*linear.Model, error) {
	m, err := linear.Fit(w.attrs, w.xs, w.ys)
	if err != nil {
		return nil, err
	}
	w.model = m
	w.Revisions++
	return m, nil
}
