package core

import (
	"errors"
	"fmt"

	"modelir/internal/bayes"
	"modelir/internal/topk"
)

// Knowledge-model retrieval over the archive's *features* abstraction
// level: a fuzzy RuleSet (Section 2.3) is evaluated per tile against
// the tile's stored band statistics, without touching raw pixels — the
// "semantics and features … at lower data volumes" path of Section 3.1.
//
// Feature names follow "<band>.<stat>" with stat one of mean, std, min,
// max (e.g. "b4.mean", "elev.max").

// KnowledgeStats reports the work of a knowledge-model tile query.
type KnowledgeStats struct {
	TilesScored int
	// RawBytesAvoided estimates the raw-level volume (float64 samples)
	// the feature-level evaluation did not need to read.
	RawSamplesAvoided int
}

// KnowledgeTopKTiles ranks a scene's tiles by rule-set score. Item IDs
// are tile indices into the archive's Tiles slice.
func (e *Engine) KnowledgeTopKTiles(dataset string, rules *bayes.RuleSet, k int) ([]topk.Item, KnowledgeStats, error) {
	var st KnowledgeStats
	if rules == nil || rules.Len() == 0 {
		return nil, st, errors.New("core: empty rule set")
	}
	sc, err := e.Scene(dataset)
	if err != nil {
		return nil, st, err
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, st, err
	}
	vals := make(map[string]float64, 4*sc.NumBands())
	for ti, tile := range sc.Tiles {
		for b, name := range sc.BandNames {
			feat, err := sc.Feature(b, ti)
			if err != nil {
				return nil, st, err
			}
			vals[name+".mean"] = feat.Stats.Mean
			vals[name+".std"] = feat.Stats.Std
			vals[name+".min"] = feat.Stats.Min
			vals[name+".max"] = feat.Stats.Max
		}
		score, err := rules.Score(vals)
		if err != nil {
			return nil, st, fmt.Errorf("core: tile %d: %w", ti, err)
		}
		st.TilesScored++
		st.RawSamplesAvoided += tile.Area() * sc.NumBands()
		if score > 0 {
			h.OfferScore(int64(ti), score)
		}
	}
	return h.Results(), st, nil
}

// HPSTileRules compiles the Fig. 3 knowledge model into a feature-level
// rule set usable with KnowledgeTopKTiles on a Landsat-like archive:
// vegetated surroundings (high b4), dry-season signal (high b5), modest
// elevation. Thresholds are expressed as fuzzy ramps over digital
// numbers / meters.
func HPSTileRules() *bayes.RuleSet {
	return bayes.NewRuleSet().
		Require("b4.mean", bayes.Above{Lo: 120, Hi: 160}).
		Require("b5.mean", bayes.Above{Lo: 80, Hi: 120}).
		Add("elev.mean", bayes.Below{Lo: 800, Hi: 1200}, 0.5)
}
