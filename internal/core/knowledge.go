package core

import (
	"context"

	"modelir/internal/bayes"
	"modelir/internal/topk"
)

// Knowledge-model retrieval over the archive's *features* abstraction
// level: a fuzzy RuleSet (Section 2.3) is evaluated per tile against
// the tile's stored band statistics, without touching raw pixels — the
// "semantics and features … at lower data volumes" path of Section 3.1.
//
// Feature names follow "<band>.<stat>" with stat one of mean, std, min,
// max (e.g. "b4.mean", "elev.max").

// KnowledgeStats reports the work of a knowledge-model tile query.
type KnowledgeStats struct {
	TilesScored int
	// RawBytesAvoided estimates the raw-level volume (float64 samples)
	// the feature-level evaluation did not need to read.
	RawSamplesAvoided int
}

// KnowledgeTopKTiles ranks a scene's tiles by rule-set score. See
// KnowledgeQuery for the execution notes.
//
// Deprecated: use Run with a KnowledgeQuery; this wrapper exists for
// callers that predate the unified request API and adds no behavior.
func (e *Engine) KnowledgeTopKTiles(dataset string, rules *bayes.RuleSet, k int) ([]topk.Item, KnowledgeStats, error) {
	var st KnowledgeStats
	if err := legacyK(k); err != nil {
		return nil, st, err
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: dataset,
		Query:   KnowledgeQuery{Rules: rules},
		K:       k,
	})
	if err != nil {
		return nil, st, err
	}
	st, _ = res.Stats.Detail.(KnowledgeStats)
	return res.Items, st, nil
}

// HPSTileRules compiles the Fig. 3 knowledge model into a feature-level
// rule set usable with KnowledgeTopKTiles on a Landsat-like archive:
// vegetated surroundings (high b4), dry-season signal (high b5), modest
// elevation. Thresholds are expressed as fuzzy ramps over digital
// numbers / meters.
func HPSTileRules() *bayes.RuleSet {
	return bayes.NewRuleSet().
		Require("b4.mean", bayes.Above{Lo: 120, Hi: 160}).
		Require("b5.mean", bayes.Above{Lo: 80, Hi: 120}).
		Add("elev.mean", bayes.Below{Lo: 800, Hi: 1200}, 0.5)
}
