// Remote-execution hooks: the pieces the cluster layer needs to run one
// logical query's partition on this process while exchanging screening
// floors with partitions running elsewhere. The engine keeps its whole
// execution pipeline (cache, admission, shard fan-out, budget) — the
// only new surface is a SharedBound that splices external floor raises
// into the query's internal topk.Bound and exposes local raises for
// publication.

package core

import (
	"context"
	"math"
	"sync"

	"modelir/internal/topk"
)

// SharedBound carries one in-flight query's screening floor across a
// process boundary, in the caller-visible result scale. Remote floors
// arrive via Raise; the local floor is read via Floor. Internally the
// engine screens some families on a shifted scale (the linear family
// scores pre-intercept), so the bound attaches to the query plan's
// topk.Bound together with the plan's shift and translates both ways.
//
// Raises that arrive before the plan is compiled are buffered and
// applied at attach time, so an early remote floor is never dropped.
// Like topk.Bound, a SharedBound only ever tightens and must not be
// reused across queries.
type SharedBound struct {
	mu      sync.Mutex
	b       *topk.Bound
	shift   float64
	pending float64 // result-scale floor buffered before attach
	foreign bool    // any external Raise observed (see foreignRaised)
}

// NewSharedBound returns a bound starting at negative infinity.
func NewSharedBound() *SharedBound {
	return &SharedBound{pending: math.Inf(-1)}
}

// Raise lifts the floor to v (result scale) if v is higher. Safe to
// call concurrently with query execution.
func (s *SharedBound) Raise(v float64) {
	if s == nil || math.IsNaN(v) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !math.IsInf(v, -1) {
		s.foreign = true
	}
	if v > s.pending {
		s.pending = v
	}
	if s.b != nil {
		s.b.Raise(v - s.shift)
	}
}

// foreignRaised reports whether any external floor reached this bound.
// A run influenced by a foreign floor may omit items of the *local*
// top-K that are hopeless in the foreign query's global merge, so its
// result must not be cached: an identical future request outside that
// scatter deserves the full local answer. Foreign raises strictly
// precede (happens-before, via the mutex) any pruning they cause, so a
// false reading after the run guarantees the result is the full local
// top-K.
func (s *SharedBound) foreignRaised() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.foreign
}

// Floor returns the current floor in the result scale: the tightest of
// every remote raise and whatever the local execution has published.
func (s *SharedBound) Floor() float64 {
	if s == nil {
		return math.Inf(-1)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.b == nil {
		return s.pending
	}
	f := s.b.Get() + s.shift
	if s.pending > f {
		f = s.pending
	}
	return f
}

// attach splices the query plan's bound in, applying any raise that
// arrived before planning finished.
func (s *SharedBound) attach(b *topk.Bound, shift float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.b, s.shift = b, shift
	if !math.IsInf(s.pending, -1) {
		b.Raise(s.pending - shift)
	}
}

// detach freezes the bound at its final floor when the query ends, so a
// floor publisher that outlives the run by a beat reads a stable value
// instead of racing a recycled heap.
func (s *SharedBound) detach() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.b != nil {
		f := s.b.Get() + s.shift
		if f > s.pending {
			s.pending = f
		}
		s.b = nil
	}
}

// RunShared executes one request exactly like Run, with the query's
// screening floor spliced through sb: raises delivered to sb (from
// partitions of the same logical query running on other nodes) prune
// this run's scans mid-flight, and sb.Floor() exposes this run's floor
// for piggybacking onto partial-result streams. sb may be nil, making
// RunShared identical to Run.
//
// Determinism: pruning against the bound is strict (upper bound < floor
// is pruned, ties are kept), so a remote floor — which proves K items
// at or above it exist somewhere in the same logical query — can only
// remove items that cannot appear in the merged global top-K. Results
// for the *local partition* may therefore omit globally hopeless items,
// which is exactly the contract scatter-gather needs. Such results are
// not written to the result cache (see foreignRaised); cache *hits* are
// still served, since a cached full local top-K is a superset whose
// extra items simply lose the global merge.
func (e *Engine) RunShared(ctx context.Context, req Request, sb *SharedBound) (Result, error) {
	return e.runReq(ctx, req, nil, sb)
}
