// Request-scoped scratch arena: every Run/RunBatch execution needs a
// handful of per-shard accounting slices (family stats, examined
// counters). A serving engine answers thousands of requests with the
// same shard count, so these come from sync.Pools and are returned
// inside each plan's finish hook — the last point that reads them.
// Error paths that skip finish simply drop the slices; sync.Pool makes
// that a lost reuse, never a leak.

package core

import (
	"sync"

	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/sproc"
)

// slicePool recycles fixed-purpose []T scratch. get returns a zeroed
// length-n slice; put recycles its backing array (via pointer, so the
// pool round-trip itself does not allocate).
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) *[]T {
	if v, ok := sp.p.Get().(*[]T); ok && cap(*v) >= n {
		s := (*v)[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		*v = s
		return v
	}
	s := make([]T, n)
	return &s
}

func (sp *slicePool[T]) put(s *[]T) { sp.p.Put(s) }

var (
	onionStatsArena slicePool[onion.Stats]
	progStatsArena  slicePool[progressive.Stats]
	fsmStatsArena   slicePool[FSMStats]
	sprocStatsArena slicePool[sproc.Stats]
	intArena        slicePool[int]
)
