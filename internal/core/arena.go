// Request-scoped scratch arena: every Run/RunBatch execution needs a
// handful of per-shard accounting slices (family stats, examined
// counters). A serving engine answers thousands of requests with the
// same shard count, so these come from sync.Pools and are returned
// inside each plan's finish hook — the last point that reads them.
// Error paths that skip finish simply drop the slices; sync.Pool makes
// that a lost reuse, never a leak.

package core

import (
	"sync"

	"modelir/internal/fsm"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/sproc"
)

// slicePool recycles fixed-purpose []T scratch. get returns a zeroed
// length-n slice; put recycles its backing array (via pointer, so the
// pool round-trip itself does not allocate).
type slicePool[T any] struct{ p sync.Pool }

func (sp *slicePool[T]) get(n int) *[]T {
	if v, ok := sp.p.Get().(*[]T); ok && cap(*v) >= n {
		s := (*v)[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
		*v = s
		return v
	}
	s := make([]T, n)
	return &s
}

func (sp *slicePool[T]) put(s *[]T) { sp.p.Put(s) }

var (
	onionStatsArena slicePool[onion.Stats]
	progStatsArena  slicePool[progressive.Stats]
	fsmStatsArena   slicePool[FSMStats]
	sprocStatsArena slicePool[sproc.Stats]
	intArena        slicePool[int]
)

// Evaluator scratch pools for the columnar scan kernels: machine
// extraction / behavioral distance buffers (FSM-distance family) and
// the top-1 SPROC DP's working set (geology family). One scratch per
// in-flight worker; get/put brackets each candidate so mixed
// concurrent queries share the pools safely.
var (
	fsmScratchPool   = sync.Pool{New: func() any { return fsm.NewScratch() }}
	sprocScratchPool = sync.Pool{New: func() any { return sproc.NewScratch() }}
)
