package core

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/segment"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// sixResults holds one answer per query family.
type sixResults struct {
	linear, scene, fsmRun, fsmDist, geo, know []topk.Item
}

// runSixFamilies executes every query family through the unified Run
// API and returns the ranked items.
func runSixFamilies(t *testing.T, e *Engine, pm *linear.ProgressiveModel) sixResults {
	t.Helper()
	ctx := context.Background()
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	machine := fsm.FireAnts()
	geoQ := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
	run := func(req Request) []topk.Item {
		t.Helper()
		res, err := e.Run(ctx, req)
		if err != nil {
			t.Fatalf("%T on %q: %v", req.Query, req.Dataset, err)
		}
		return res.Items
	}
	return sixResults{
		linear:  run(Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 10}),
		scene:   run(Request{Dataset: "hps", Query: SceneQuery{Model: pm}, K: 10}),
		fsmRun:  run(Request{Dataset: "weather", Query: FSMQuery{Machine: machine, Prefilter: FireAntsPrefilter}, K: 10}),
		fsmDist: run(Request{Dataset: "weather", Query: FSMDistanceQuery{Target: machine, Horizon: 6}, K: 10}),
		geo:     run(Request{Dataset: "basin", Query: geoQ, K: 10}),
		know:    run(Request{Dataset: "hps", Query: KnowledgeQuery{Rules: HPSTileRules()}, K: 10}),
	}
}

func compareSix(t *testing.T, label string, got, want sixResults) {
	t.Helper()
	itemsEqual(t, label+" linear", got.linear, want.linear)
	itemsEqual(t, label+" scene", got.scene, want.scene)
	itemsEqual(t, label+" fsm", got.fsmRun, want.fsmRun)
	itemsEqual(t, label+" fsm-distance", got.fsmDist, want.fsmDist)
	itemsEqual(t, label+" geology", got.geo, want.geo)
	itemsEqual(t, label+" knowledge", got.know, want.know)
}

// openRestored opens a snapshot in the given mode, skipping Map mode
// on hosts that cannot mmap.
func openRestored(t *testing.T, b segment.Backend, mode segment.RestoreMode) *Engine {
	t.Helper()
	re, err := OpenSnapshot(b, RestoreOptions{Mode: mode})
	if err != nil {
		if mode == segment.Map && errors.Is(err, segment.ErrMapUnsupported) {
			t.Skipf("map restore unsupported: %v", err)
		}
		t.Fatalf("restore (%v): %v", mode, err)
	}
	return re
}

// TestSnapshotRoundTripAllFamilies pins the PR's acceptance bar: a
// restored engine answers every query family bit-identically to the
// engine that wrote the snapshot, for shard counts 1/4/7, in both Copy
// and Map restore modes.
func TestSnapshotRoundTripAllFamilies(t *testing.T) {
	a := buildArchives(t)
	for _, shards := range []int{1, 4, 7} {
		e := engineWithArchives(t, shards, a)
		want := runSixFamilies(t, e, a.pm)
		wantDS := e.Datasets()

		dir, err := segment.NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Snapshot(context.Background(), dir); err != nil {
			t.Fatalf("shards=%d snapshot: %v", shards, err)
		}

		for _, mode := range []segment.RestoreMode{segment.Copy, segment.Map} {
			re := openRestored(t, dir, mode)
			if re.NumShards() != shards {
				t.Fatalf("restored shards %d, want %d", re.NumShards(), shards)
			}
			label := fmt.Sprintf("shards=%d mode=%v", shards, mode)
			compareSix(t, label, runSixFamilies(t, re, a.pm), want)

			gotDS := re.Datasets()
			if len(gotDS) != len(wantDS) {
				t.Fatalf("%s: %d datasets, want %d", label, len(gotDS), len(wantDS))
			}
			for i := range wantDS {
				if gotDS[i] != wantDS[i] {
					t.Fatalf("%s: dataset %d = %+v, want %+v", label, i, gotDS[i], wantDS[i])
				}
			}
			if err := re.Close(); err != nil {
				t.Fatalf("%s: close: %v", label, err)
			}
			// Close is idempotent.
			if err := re.Close(); err != nil {
				t.Fatalf("%s: second close: %v", label, err)
			}
		}
	}
}

// TestSnapshotRebuildByteIdentical re-snapshots a restored engine and
// requires every file to come out byte-identical: the persisted state
// is closed under snapshot→restore→snapshot, so nothing the format
// carries is lossy.
func TestSnapshotRebuildByteIdentical(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)

	dir1 := t.TempDir()
	b1, err := segment.NewDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(context.Background(), b1); err != nil {
		t.Fatal(err)
	}
	re := openRestored(t, b1, segment.Copy)
	dir2 := t.TempDir()
	b2, err := segment.NewDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Snapshot(context.Background(), b2); err != nil {
		t.Fatal(err)
	}

	names1 := dirFileHashes(t, dir1)
	names2 := dirFileHashes(t, dir2)
	if len(names1) != len(names2) {
		t.Fatalf("%d files vs %d", len(names1), len(names2))
	}
	for name, sum := range names1 {
		if names2[name] != sum {
			t.Fatalf("file %s differs between first and second snapshot", name)
		}
	}
}

func dirFileHashes(t *testing.T, dir string) map[string][32]byte {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][32]byte, len(ents))
	for _, ent := range ents {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[ent.Name()] = sha256.Sum256(data)
	}
	return out
}

// TestSnapshotScanBaselineUnavailable pins the explicit error (not a
// panic) when the raw-rows scan baseline is asked of a restored
// engine.
func TestSnapshotScanBaselineUnavailable(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 2, a)
	dir, err := segment.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(context.Background(), dir); err != nil {
		t.Fatal(err)
	}
	re := openRestored(t, dir, segment.Copy)
	if _, err := re.ScanTopKTuplesParallel("gauss", []float64{1, -0.5, 2}, 3, 5, 2); err == nil {
		t.Fatal("scan baseline on restored engine should error")
	}
}

// TestSnapshotCorruption flips payload bytes, truncates segment files,
// and mangles the manifest: every case must surface a typed error —
// never a wrong answer, never a panic.
func TestSnapshotCorruption(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 2, a)
	dir := t.TempDir()
	b, err := segment.NewDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Snapshot(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	man, err := segment.Open(b, segment.Copy)
	if err != nil {
		t.Fatal(err)
	}
	ds0 := man.Manifest().Datasets[0]
	sec0 := ds0.Sections[0]
	man.Close()

	t.Run("payload-bit-flip", func(t *testing.T) {
		path := filepath.Join(dir, ds0.File)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer restoreFile(t, path, orig)
		mut := append([]byte(nil), orig...)
		mut[sec0.Offset] ^= 0x01
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []segment.RestoreMode{segment.Copy, segment.Map} {
			_, err := OpenSnapshot(b, RestoreOptions{Mode: mode})
			if mode == segment.Map && errors.Is(err, segment.ErrMapUnsupported) {
				continue
			}
			if !errors.Is(err, segment.ErrChecksum) {
				t.Fatalf("mode %v: got %v, want ErrChecksum", mode, err)
			}
		}
	})

	t.Run("truncated-segment", func(t *testing.T) {
		path := filepath.Join(dir, ds0.File)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer restoreFile(t, path, orig)
		if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = OpenSnapshot(b, RestoreOptions{Mode: segment.Copy})
		if !errors.Is(err, segment.ErrCorrupt) && !errors.Is(err, segment.ErrChecksum) {
			t.Fatalf("got %v, want ErrCorrupt or ErrChecksum", err)
		}
	})

	t.Run("missing-segment", func(t *testing.T) {
		path := filepath.Join(dir, ds0.File)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer restoreFile(t, path, orig)
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		_, err = OpenSnapshot(b, RestoreOptions{Mode: segment.Copy})
		if !errors.Is(err, segment.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("garbage-manifest", func(t *testing.T) {
		path := filepath.Join(dir, segment.ManifestName)
		orig, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		defer restoreFile(t, path, orig)
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = OpenSnapshot(b, RestoreOptions{Mode: segment.Copy})
		if !errors.Is(err, segment.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("no-snapshot", func(t *testing.T) {
		empty, err := segment.NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		_, err = OpenSnapshot(empty, RestoreOptions{})
		if !errors.Is(err, segment.ErrNoSnapshot) {
			t.Fatalf("got %v, want ErrNoSnapshot", err)
		}
	})
}

func restoreFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
