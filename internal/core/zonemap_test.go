package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"modelir/internal/linear"
	"modelir/internal/topk"
)

// The zone-map soundness property at the engine level: the columnar
// blocked+pruned tuple path must return bit-identical top-K (IDs and
// scores) to a plain full scan, for random archives, random signed
// models with intercepts, random K and MinScore, at shard counts 1, 4
// and 7. This is the layout-refactor acceptance pin — the memory
// layout never moves an answer.
func TestZoneMapPrunedScanMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	attrs := func(d int) []string {
		out := make([]string, d)
		for i := range out {
			out[i] = string(rune('a' + i))
		}
		return out
	}
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(4000)
		dim := 2 + rng.Intn(7)
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, dim)
			for d := range p {
				p[d] = rng.NormFloat64() * 4
				if rng.Float64() < 0.1 {
					p[d] = math.Round(p[d]) // ties across rows
				}
			}
			pts[i] = p
		}
		coeffs := make([]float64, dim)
		for d := range coeffs {
			coeffs[d] = rng.NormFloat64()
		}
		m, err := linear.New(attrs(dim), coeffs, rng.NormFloat64())
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(60)
		req := Request{Dataset: "t", Query: LinearQuery{Model: m}, K: k}
		if rng.Float64() < 0.5 {
			floor := rng.NormFloat64() * 5
			req.MinScore = &floor
		}

		// Reference: score every point with the model, exact top-K under
		// the heap's (score, ID) order, MinScore post-filtered.
		// Dot first, intercept after — the engine shifts scores by the
		// intercept post-scan, and float addition is not associative.
		ref := topk.MustHeap(k)
		for i, p := range pts {
			s := 0.0
			for d, c := range m.Coeffs {
				s += c * p[d]
			}
			ref.OfferScore(int64(i), s+m.Intercept)
		}
		want := ref.Results()
		if req.MinScore != nil {
			kept := want[:0]
			for _, it := range want {
				if it.Score >= *req.MinScore {
					kept = append(kept, it)
				}
			}
			want = kept
		}

		for _, shards := range []int{1, 4, 7} {
			e := NewEngineWith(Options{Shards: shards, CacheEntries: -1})
			if err := e.AddTuples("t", pts); err != nil {
				t.Fatal(err)
			}
			res, err := e.Run(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Items) != len(want) {
				t.Fatalf("trial %d shards=%d: %d items, want %d", trial, shards, len(res.Items), len(want))
			}
			for i := range want {
				if res.Items[i].ID != want[i].ID || res.Items[i].Score != want[i].Score {
					t.Fatalf("trial %d shards=%d pos %d: got (%d, %v), want (%d, %v)",
						trial, shards, i, res.Items[i].ID, res.Items[i].Score, want[i].ID, want[i].Score)
				}
			}
		}
	}
}
