package core

import (
	"context"
	"testing"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/sproc"
	"modelir/internal/synth"
)

// The columnar-feature-plane pins: the flat event/strata/feature
// storage built at ingest must reproduce the row-shaped evaluation it
// replaced value for value, and the charge-before-scoring budget
// discipline must truncate scans at exactly the hand-computable
// candidate boundaries.

// TestSeriesShardEventPlaneMatchesClassify: the ingest-time event
// plane must equal per-query classification for every region.
func TestSeriesShardEventPlaneMatchesClassify(t *testing.T) {
	arch, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 71, Regions: 37, Days: 120, MeanTempC: 16})
	if err != nil {
		t.Fatal(err)
	}
	ss := newSeriesSet(arch, 4)
	seen := 0
	for _, sh := range ss.shards {
		for i, reg := range sh.regions {
			want := fsm.ClassifySeries(reg.Days)
			got := sh.eventsOf(i)
			if len(got) != len(want) {
				t.Fatalf("region %d: %d events, want %d", reg.Region, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("region %d day %d: event %d, want %d", reg.Region, j, got[j], want[j])
				}
			}
			seen++
		}
	}
	if seen != 37 {
		t.Fatalf("event plane covers %d regions, want 37", seen)
	}
}

// TestWellShardColumnsMatchStrata: the SoA strata planes must hold
// every stratum field verbatim.
func TestWellShardColumnsMatchStrata(t *testing.T) {
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 81, Wells: 23})
	if err != nil {
		t.Fatal(err)
	}
	ws := newWellSet(wells, 3)
	seen := 0
	for _, sh := range ws.shards {
		for i, w := range sh.wells {
			if sh.strataLen(i) != len(w.Strata) {
				t.Fatalf("well %d: %d strata, want %d", w.Well, sh.strataLen(i), len(w.Strata))
			}
			for j, st := range w.Strata {
				o := sh.off[i] + j
				if sh.lith[o] != st.Lith || sh.topFt[o] != st.TopFt ||
					sh.thickFt[o] != st.ThickFt || sh.gamma[o] != st.GammaAPI {
					t.Fatalf("well %d stratum %d: columnar (%v,%v,%v,%v) vs row (%v,%v,%v,%v)",
						w.Well, j, sh.lith[o], sh.topFt[o], sh.thickFt[o], sh.gamma[o],
						st.Lith, st.TopFt, st.ThickFt, st.GammaAPI)
				}
			}
			seen++
		}
	}
	if seen != 23 {
		t.Fatalf("columns cover %d wells, want 23", seen)
	}
}

// TestGeoScannerMatchesRowQuery: the columnar grade closures must be
// bit-identical to geologySprocQuery's row-based grades on every
// (slot, item) and (slot, prev, cur) combination.
func TestGeoScannerMatchesRowQuery(t *testing.T) {
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 82, Wells: 12})
	if err != nil {
		t.Fatal(err)
	}
	ws := newWellSet(wells, 2)
	q := GeologyQuery{
		Sequence:     []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt:     10,
		MinGamma:     45,
		GammaRampAPI: 5,
	}
	for _, sh := range ws.shards {
		g := newGeoShardScanner(sh, q)
		for i, w := range sh.wells {
			n := g.setWell(i)
			ref := geologySprocQuery(w, q)
			for m := 0; m < len(q.Sequence); m++ {
				for item := 0; item < n; item++ {
					if got, want := g.sq.Unary(m, item), ref.Unary(m, item); got != want {
						t.Fatalf("well %d unary(%d,%d): %v vs %v", w.Well, m, item, got, want)
					}
				}
			}
			for m := 1; m < len(q.Sequence); m++ {
				for prev := 0; prev < n; prev++ {
					for cur := 0; cur < n; cur++ {
						if got, want := g.sq.Pair(m, prev, cur), ref.Pair(m, prev, cur); got != want {
							t.Fatalf("well %d pair(%d,%d,%d): %v vs %v", w.Well, m, prev, cur, got, want)
						}
					}
				}
			}
		}
	}
}

// TestGeologyMethodsAgreeOnColumnarStore: all three evaluators must
// return identical results through the engine — the DP path now runs
// the scratch-backed top-1 DP, so this pins it against brute force.
func TestGeologyMethodsAgreeOnColumnarStore(t *testing.T) {
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 83, Wells: 40})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{Shards: 3, CacheEntries: -1})
	if err := e.AddWells("basin", wells); err != nil {
		t.Fatal(err)
	}
	base := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone},
		MaxGapFt: 12, MinGamma: 45, GammaRampAPI: 3,
	}
	var ref []WellMatch
	for mi, method := range []GeologyMethod{GeoBruteForce, GeoDP, GeoPruned} {
		q := base
		q.Method = method
		res, err := e.Run(context.Background(), Request{Dataset: "basin", Query: q, K: 8})
		if err != nil {
			t.Fatal(err)
		}
		got, err := WellMatches(res.Items)
		if err != nil {
			t.Fatal(err)
		}
		if mi == 0 {
			ref = got
			continue
		}
		if len(got) != len(ref) {
			t.Fatalf("method %d: %d matches, want %d", method, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Well != ref[i].Well || got[i].Score != ref[i].Score {
				t.Fatalf("method %d pos %d: %+v vs %+v", method, i, got[i], ref[i])
			}
			for j := range ref[i].Strata {
				if got[i].Strata[j] != ref[i].Strata[j] {
					t.Fatalf("method %d pos %d strata: %v vs %v", method, i, got[i].Strata, ref[i].Strata)
				}
			}
		}
	}
}

// TestKnowledgeFeatureMatrixMatchesArchive: the ingest-time feature
// matrix must hold exactly the per-tile stats the archive reports.
func TestKnowledgeFeatureMatrixMatchesArchive(t *testing.T) {
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 9, W: 32, H: 32})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 8, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	ss := newSceneSet(arch, 2)
	if len(ss.featCols) != arch.NumBands()*4 {
		t.Fatalf("%d feature columns for %d bands", len(ss.featCols), arch.NumBands())
	}
	for ti := range arch.Tiles {
		row := ss.featRow(ti)
		for b := 0; b < arch.NumBands(); b++ {
			feat, err := arch.Feature(b, ti)
			if err != nil {
				t.Fatal(err)
			}
			if row[b*4] != feat.Stats.Mean || row[b*4+1] != feat.Stats.Std ||
				row[b*4+2] != feat.Stats.Min || row[b*4+3] != feat.Stats.Max {
				t.Fatalf("tile %d band %d: matrix row %v vs stats %+v", ti, b, row[b*4:b*4+4], feat.Stats)
			}
		}
	}
}

// TestScanBudgetBoundariesExact is the charge-before-scoring pin
// (hand-built archives, Workers:1): for every budget from zero through
// the archive's total work, the scan must stop exactly at the first
// candidate whose cumulative charge exceeds the budget — Examined,
// Evaluations and Truncated all pinned per boundary.
func TestScanBudgetBoundariesExact(t *testing.T) {
	// FSM family: regions cost 5, 6, 4, 7 days (no prefilter).
	e := NewEngineWith(Options{Shards: 1})
	if err := e.AddSeries("w", fsmStatsArchive()); err != nil {
		t.Fatal(err)
	}
	costs := []int{5, 6, 4, 7}
	total := 0
	for _, c := range costs {
		total += c
	}
	for budget := 1; budget <= total+3; budget++ {
		// A candidate is scanned while the meter is not yet exhausted
		// (used <= budget), and its whole cost is charged before its
		// machine runs; the next gate stops the scan.
		wantExamined, used := 0, 0
		for _, c := range costs {
			if used > budget {
				break
			}
			used += c
			wantExamined++
		}
		res, err := e.Run(context.Background(), Request{
			Dataset: "w",
			Query:   FSMQuery{Machine: fsm.FireAnts()},
			K:       4, Workers: 1, Budget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Examined != wantExamined || res.Stats.Evaluations != used {
			t.Fatalf("budget %d: examined %d evals %d, want %d/%d",
				budget, res.Stats.Examined, res.Stats.Evaluations, wantExamined, used)
		}
		if wantTrunc := used > budget; res.Stats.Truncated != wantTrunc {
			t.Fatalf("budget %d: truncated %v, want %v", budget, res.Stats.Truncated, wantTrunc)
		}
	}

	// Knowledge family: every tile costs Rules.Len() — uniform
	// boundaries.
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 9, W: 16, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 8, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("s", arch); err != nil {
		t.Fatal(err)
	}
	rules := HPSTileRules()
	cost, tiles := rules.Len(), 4
	for budget := 1; budget <= cost*tiles+2; budget++ {
		wantExamined, used := 0, 0
		for ti := 0; ti < tiles; ti++ {
			if used > budget {
				break
			}
			used += cost
			wantExamined++
		}
		res, err := e.Run(context.Background(), Request{
			Dataset: "s", Query: KnowledgeQuery{Rules: rules},
			K: 4, Workers: 1, Budget: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Examined != wantExamined || res.Stats.Evaluations != used {
			t.Fatalf("knowledge budget %d: examined %d evals %d, want %d/%d",
				budget, res.Stats.Examined, res.Stats.Evaluations, wantExamined, used)
		}
		if wantTrunc := used > budget; res.Stats.Truncated != wantTrunc {
			t.Fatalf("knowledge budget %d: truncated %v, want %v", budget, res.Stats.Truncated, wantTrunc)
		}
	}
}

// TestGeologyDPScratchStatsMatchDPCtx: the engine's scratch-backed DP
// must report exactly the stats the plain DPCtx reports (the
// accounting contract TestStatsGeologyExact pins for brute force).
func TestGeologyDPScratchStatsMatchDPCtx(t *testing.T) {
	e := NewEngineWith(Options{Shards: 1})
	wells := geoStatsWells()
	if err := e.AddWells("g", wells); err != nil {
		t.Fatal(err)
	}
	gq := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone},
		MaxGapFt: 10, MinGamma: 45, Method: GeoDP,
	}
	wantEvals := 0
	for _, w := range wells {
		_, wst, err := sproc.DPCtx(context.Background(), len(w.Strata), geologySprocQuery(w, gq), 1)
		if err != nil {
			t.Fatal(err)
		}
		wantEvals += wst.UnaryEvals + wst.PairEvals
	}
	res, err := e.Run(context.Background(), Request{Dataset: "g", Query: gq, K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evaluations != wantEvals || res.Stats.Examined != len(wells) {
		t.Fatalf("stats %+v, want evals %d examined %d", res.Stats, wantEvals, len(wells))
	}
}
