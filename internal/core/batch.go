// Engine.RunBatch: the serving layer's many-requests entry point. A
// batch is cheaper than its requests run separately for three reasons,
// applied in order:
//
//  1. cache — each request is probed against the result cache first;
//  2. dedup — identical cacheable requests (same canonical fingerprint)
//     execute once, with followers receiving copies of the leader's
//     result;
//  3. amortized fan-out — surviving requests are ordered into per-
//     model-family groups and ALL of their (request, shard) cells are
//     scheduled on ONE shared worker pool (parallel.BatchShardTopKCtx)
//     under ONE admission grant, instead of a pool and a grant per
//     request; mixed-family batches run their families concurrently.
//
// Every request's items and stats are bit-identical (modulo Wall and
// Cache) to what a solo Engine.Run of the same request would return:
// batching, like sharding and worker clamping, changes scheduling only.

package core

import (
	"context"
	"errors"
	"time"

	"modelir/internal/parallel"
	"modelir/internal/qcache"
)

// BatchResult is one request's outcome within a batch: exactly one of
// Result or Err is meaningful (Err nil means Result is valid).
type BatchResult struct {
	Result Result
	Err    error
}

// batchEntry is one deduped unit of execution: a validated request plus
// the batch positions its result must be copied to.
type batchEntry struct {
	idx       int     // position in the caller's request slice
	req       Request // validated copy (defaults resolved)
	key       qcache.Key
	cacheable bool
	gen       uint64 // target dataset's generation at probe time
	followers []int  // positions holding identical requests
}

// RunBatch executes many requests as one serving unit and returns one
// BatchResult per request, positionally. Failures are isolated: a
// malformed or failing request poisons only its own slot. The error
// return is non-nil only for whole-batch conditions (context
// cancellation), in which case every not-yet-completed slot also
// carries that error.
func (e *Engine) RunBatch(ctx context.Context, reqs []Request) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	if err := ctx.Err(); err != nil {
		for i := range out {
			out[i].Err = err
		}
		return out, err
	}
	start := time.Now()

	// Phase 1: validate, probe the cache, dedup identical requests.
	var exec []*batchEntry
	leaderByKey := make(map[qcache.Key]*batchEntry)
	for i := range reqs {
		req := reqs[i]
		if err := validateRequest(&req); err != nil {
			out[i].Err = err
			continue
		}
		var key qcache.Key
		var gen uint64
		cacheable := false
		if e.cache != nil {
			key, cacheable = fingerprintRequest(req)
		}
		if cacheable {
			// Per-dataset generation, sampled before the plan resolves
			// the shard list — same staleness argument as runReq.
			gen = e.generationOf(req)
			if res, ok := e.cacheGet(key, gen, start); ok {
				out[i].Result = res
				continue
			}
			if l, ok := leaderByKey[key]; ok {
				l.followers = append(l.followers, i)
				continue
			}
		}
		en := &batchEntry{idx: i, req: req, key: key, cacheable: cacheable, gen: gen}
		if cacheable {
			leaderByKey[key] = en
		}
		exec = append(exec, en)
	}
	if len(exec) == 0 {
		return out, nil
	}

	// Phase 2: order the survivors family-major (compatible requests
	// grouped per model family, first-appearance order), then plan and
	// execute EVERY group's (request, shard) cells on one shared pool
	// under one admission grant — a mixed-family batch runs its
	// families concurrently, not back to back.
	groups := make(map[ModelKind][]*batchEntry)
	var order []ModelKind
	for _, en := range exec {
		k := en.req.Query.Kind()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], en)
	}
	exec = exec[:0]
	for _, kind := range order {
		exec = append(exec, groups[kind]...)
	}

	live := make([]*batchEntry, 0, len(exec))
	plans := make([]queryPlan, 0, len(exec))
	specs := make([]parallel.BatchSpec, 0, len(exec))
	want := 1
	for _, en := range exec {
		p, err := en.req.Query.plan(ctx, e, en.req, nil)
		if err != nil {
			fillBatchErr(out, en, bareCtxErr(ctx, err))
			continue
		}
		// The batch admits once, at the widest width any member would
		// have used solo — batching never consumes more of the worker
		// budget than the largest single request.
		if w := effectiveWorkers(en.req.Workers, p.shards); w > want {
			want = w
		}
		live = append(live, en)
		plans = append(plans, p)
		specs = append(specs, parallel.BatchSpec{Shards: p.shards, K: en.req.K, Floor: p.floor, Run: p.run})
	}
	if len(live) == 0 {
		return out, nil
	}
	workers, release, err := e.admit(ctx, want)
	if err != nil {
		for _, en := range live {
			fillBatchErr(out, en, err)
		}
		return out, err
	}
	defer release()

	results, errs := parallel.BatchShardTopKCtx(ctx, workers, specs)
	var ctxErr error
	for gi, en := range live {
		if errs[gi] != nil {
			err := bareCtxErr(ctx, errs[gi])
			if ce := ctx.Err(); ce != nil && errors.Is(err, ce) {
				ctxErr = ce
			}
			fillBatchErr(out, en, err)
			continue
		}
		items, st, err := plans[gi].finish(results[gi])
		if err != nil {
			fillBatchErr(out, en, bareCtxErr(ctx, err))
			continue
		}
		if en.req.MinScore != nil {
			items = filterMinScore(items, *en.req.MinScore)
		}
		st.Kind = en.req.Query.Kind()
		if en.cacheable {
			e.cachePut(en.key, en.gen, items, st)
		}
		st.Wall = time.Since(start)
		st.Cache = e.cacheInfo(false)
		out[en.idx] = BatchResult{Result: Result{Items: items, Stats: st}}
		// Followers get their own copies: batchmates must not share
		// mutable slices.
		for _, fi := range en.followers {
			fst := st
			fst.Wall = time.Since(start)
			out[fi] = BatchResult{Result: Result{Items: cloneItems(items), Stats: fst}}
		}
	}
	return out, ctxErr
}

func fillBatchErr(out []BatchResult, en *batchEntry, err error) {
	out[en.idx].Err = err
	for _, fi := range en.followers {
		out[fi].Err = err
	}
}
