// Shard plumbing for the engine: every dataset is partitioned into N
// contiguous shards at ingest, each shard carrying its own lazily built
// model-specific index (Onion layers for tuple archives, an assigned
// slice of pyramid root cells for scenes, precomputed metadata
// summaries for series). Queries fan out one worker per shard and merge
// partial top-K heaps; because shard data is immutable after
// registration and index builds are guarded by sync.Once, the whole
// structure is safe for concurrent queries without locks on the hot
// path.

package core

import (
	"sync"

	"modelir/internal/archive"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/synth"
)

// partition splits n items into at most `want` contiguous non-empty
// ranges [lo, hi). Sizes differ by at most one, and the layout depends
// only on (n, want), so shard boundaries — and therefore global item
// IDs — are stable across runs.
func partition(n, want int) [][2]int {
	if n <= 0 {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	out := make([][2]int, 0, want)
	base, rem := n/want, n%want
	lo := 0
	for s := 0; s < want; s++ {
		hi := lo + base
		if s < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// tupleShard is one partition of a tuple archive. Its Onion index is
// built on first use (sync.Once makes concurrent first queries safe)
// over the shard's sub-slice, so result IDs are local and must be
// shifted by offset into the global index space.
type tupleShard struct {
	offset int
	points [][]float64

	once  sync.Once
	index *onion.Index
	err   error
}

func (s *tupleShard) ensureIndex(opt onion.Options) (*onion.Index, error) {
	s.once.Do(func() {
		s.index, s.err = onion.Build(s.points, opt)
	})
	return s.index, s.err
}

// tupleSet is a registered tuple archive, sharded at ingest. The flat
// row slice is retained (shards alias its backing array) for the
// sequential-scan baseline, which partitions per item, not per shard.
type tupleSet struct {
	points [][]float64
	shards []*tupleShard
}

func newTupleSet(points [][]float64, shards int) *tupleSet {
	ts := &tupleSet{points: points}
	for _, r := range partition(len(points), shards) {
		ts.shards = append(ts.shards, &tupleShard{
			offset: r[0],
			points: points[r[0]:r[1]],
		})
	}
	return ts
}

// seriesShard is one partition of a series archive with its
// metadata-level summaries (the prefilter index) built at ingest.
type seriesShard struct {
	regions []synth.RegionSeries
	sums    []synth.DrySpellStats
}

// seriesSet is a registered series archive, sharded at ingest.
type seriesSet struct {
	total  int
	shards []*seriesShard
}

func newSeriesSet(rs []synth.RegionSeries, shards int) *seriesSet {
	ss := &seriesSet{total: len(rs)}
	for _, r := range partition(len(rs), shards) {
		part := rs[r[0]:r[1]]
		sums := make([]synth.DrySpellStats, len(part))
		for i, reg := range part {
			sums[i] = synth.SummarizeSeries(reg)
		}
		ss.shards = append(ss.shards, &seriesShard{regions: part, sums: sums})
	}
	return ss
}

// wellSet is a registered well-log archive, sharded at ingest.
type wellSet struct {
	shards [][]synth.WellLog
}

func newWellSet(ws []synth.WellLog, shards int) *wellSet {
	s := &wellSet{}
	for _, r := range partition(len(ws), shards) {
		s.shards = append(s.shards, ws[r[0]:r[1]])
	}
	return s
}

// sceneSet is a registered raster archive. The scene's pyramid (built
// by archive.BuildScene) is shared read-only across shards; what is
// partitioned is the coarsest-level cell frontier, so each shard runs
// branch-and-bound over its own territory of the scene.
type sceneSet struct {
	scene *archive.Scene
	roots [][]progressive.Cell
}

func newSceneSet(sc *archive.Scene, shards int) *sceneSet {
	ss := &sceneSet{scene: sc}
	roots := progressive.Roots(sc.Pyramid())
	for _, r := range partition(len(roots), shards) {
		ss.roots = append(ss.roots, roots[r[0]:r[1]])
	}
	return ss
}
