// Shard plumbing for the engine: every dataset is partitioned into N
// contiguous shards at ingest, each shard carrying its own lazily built
// model-specific index (Onion layers for tuple archives, an assigned
// slice of pyramid root cells for scenes, precomputed metadata
// summaries for series). Queries fan out one worker per shard and merge
// partial top-K heaps; because shard data is immutable after
// registration and index builds are guarded by sync.Once, the whole
// structure is safe for concurrent queries without locks on the hot
// path.
//
// Live ingest rides on the same invariant: an append never mutates a
// set in place. It builds an immutable delta segment (one more shard
// value of the same type) and swaps in a new set value that shares the
// base shards, extends the scan list, and advances the dataset's
// generation. In-flight queries keep the set pointer they resolved and
// see a consistent world; the next query sees base + deltas. A
// background compactor folds deltas back into balanced base shards
// (see ingest.go) without changing the generation — compaction changes
// layout, never content.

package core

import (
	"fmt"
	"sync"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/synth"
)

// partition splits n items into at most `want` contiguous non-empty
// ranges [lo, hi). Sizes differ by at most one, and the layout depends
// only on (n, want), so shard boundaries — and therefore global item
// IDs — are stable across runs.
func partition(n, want int) [][2]int {
	if n <= 0 {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	out := make([][2]int, 0, want)
	base, rem := n/want, n%want
	lo := 0
	for s := 0; s < want; s++ {
		hi := lo + base
		if s < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// tupleShard is one partition of a tuple archive. Its Onion index is
// built on first use (sync.Once makes concurrent first queries safe)
// over the shard's sub-slice, so result IDs are local and must be
// shifted by offset into the global index space.
type tupleShard struct {
	offset int
	points [][]float64

	once  sync.Once
	index *onion.Index
	err   error
}

func (s *tupleShard) ensureIndex(opt onion.Options) (*onion.Index, error) {
	s.once.Do(func() {
		s.index, s.err = onion.Build(s.points, opt)
	})
	return s.index, s.err
}

// tupleSet is a registered tuple archive, sharded at ingest. The flat
// base-row slice is retained (base shards alias its backing array) for
// the sequential-scan baseline and full recompaction; a
// snapshot-restored set has points == nil (only the built indexes are
// persisted). rows carries the logical count including delta rows on
// every path, and scan — base shards followed by deltas — is the only
// shard list query plans fan out over.
type tupleSet struct {
	points [][]float64
	rows   int
	shards []*tupleShard
	// deltas are immutable delta segments landed by AppendTuples after
	// registration, in append order; their offsets continue the global
	// row space, so item IDs are identical to a from-scratch build.
	deltas []*tupleShard
	// scan is shards + deltas (aliased when there are no deltas).
	scan []*tupleShard
	// gen is the dataset's cache-invalidation generation: 1 at
	// registration, +1 per append, unchanged by compaction.
	gen uint64
	// pinned marks a set holding at least one delta whose offset does
	// not continue the local row space contiguously (a cluster append
	// landed rows at an explicit global base, see AppendTuplesAt).
	// Compaction would reassign those offsets — and with them the
	// result IDs the cluster contract pins — so a pinned set is never
	// compacted.
	pinned bool
}

func newTupleSet(points [][]float64, shards int) *tupleSet {
	ts := &tupleSet{points: points, rows: len(points), gen: 1}
	for _, r := range partition(len(points), shards) {
		ts.shards = append(ts.shards, &tupleShard{
			offset: r[0],
			points: points[r[0]:r[1]],
		})
	}
	ts.scan = ts.shards
	return ts
}

// deltaRows counts the rows living in delta segments.
func (ts *tupleSet) deltaRows() int {
	n := 0
	for _, d := range ts.deltas {
		n += len(d.points)
	}
	return n
}

// withDelta returns a new set value with one more delta segment
// holding rows. The receiver is untouched (in-flight queries keep
// their consistent view); base shards are shared, the delta's offset
// continues the global row space, and the generation advances.
func (ts *tupleSet) withDelta(rows [][]float64) *tupleSet {
	return ts.withDeltaAt(ts.rows, rows)
}

// withDeltaAt is withDelta with an explicit base offset for the new
// delta segment: the rows take IDs base..base+len(rows)-1. A base
// beyond ts.rows leaves a gap in the local row space (legal — IDs are
// just labels to every scan path) but pins the set against compaction,
// which could not preserve per-delta offsets. rows becomes the row
// watermark: max(old rows, base+len).
func (ts *tupleSet) withDeltaAt(base int, rows [][]float64) *tupleSet {
	d := &tupleShard{offset: base, points: rows}
	watermark := ts.rows
	if base+len(rows) > watermark {
		watermark = base + len(rows)
	}
	nt := &tupleSet{
		points: ts.points,
		rows:   watermark,
		shards: ts.shards,
		deltas: append(ts.deltas[:len(ts.deltas):len(ts.deltas)], d),
		gen:    ts.gen + 1,
		pinned: ts.pinned || base != ts.rows,
	}
	nt.scan = append(ts.shards[:len(ts.shards):len(ts.shards)], nt.deltas...)
	return nt
}

// compact folds the set's deltas away: with base rows at hand, a full
// rebuild into `shards` balanced base shards (indexes re-derive lazily
// on next query); on a restored base (raw rows never persisted), the
// deltas merge into ONE delta segment instead. Returns nil when there
// is nothing productive to do. The generation is preserved — content
// is unchanged, so live cache entries stay valid.
func (ts *tupleSet) compact(shards int) *tupleSet {
	if len(ts.deltas) == 0 || ts.pinned {
		return nil
	}
	if ts.points != nil {
		all := make([][]float64, 0, ts.rows)
		all = append(all, ts.points...)
		for _, d := range ts.deltas {
			all = append(all, d.points...)
		}
		nt := newTupleSet(all, shards)
		nt.gen = ts.gen
		return nt
	}
	if len(ts.deltas) == 1 {
		return nil
	}
	dr := ts.deltaRows()
	rows := make([][]float64, 0, dr)
	for _, d := range ts.deltas {
		rows = append(rows, d.points...)
	}
	d := &tupleShard{offset: ts.rows - dr, points: rows}
	nt := &tupleSet{
		rows:   ts.rows,
		shards: ts.shards,
		deltas: []*tupleShard{d},
		gen:    ts.gen,
	}
	nt.scan = append(ts.shards[:len(ts.shards):len(ts.shards)], d)
	return nt
}

// restoredTupleShard wraps a snapshot-restored Onion index. The build
// Once is burned immediately so ensureIndex returns the restored index
// without ever consulting points (which stay nil).
func restoredTupleShard(offset int, ix *onion.Index) *tupleShard {
	sh := &tupleShard{offset: offset}
	sh.once.Do(func() { sh.index = ix })
	return sh
}

// restoredTupleSet assembles a tuple set from restored shards. points
// stays nil: the sequential-scan baseline is unavailable on a restored
// engine (the raw rows were never persisted), which parallel.go turns
// into an explicit error rather than a panic.
func restoredTupleSet(rows int, shards []*tupleShard) *tupleSet {
	return &tupleSet{rows: rows, shards: shards, scan: shards, gen: 1}
}

// seriesShard is one partition of a series archive with its
// metadata-level summaries (the prefilter index) built at ingest, plus
// the columnar event plane: every region's day-classified FSM events
// in ONE flat allocation, so a query runs machines over contiguous
// event runs instead of re-classifying raw weather structs per query
// per region. Classification is deterministic, so precomputing it at
// ingest changes results by exactly nothing.
type seriesShard struct {
	regions []synth.RegionSeries
	sums    []synth.DrySpellStats
	// events is the flat event plane; region i of the shard occupies
	// events[evOff[i]:evOff[i+1]].
	events []fsm.Event
	evOff  []int
}

// eventsOf returns region i's precomputed event run.
func (s *seriesShard) eventsOf(i int) []fsm.Event {
	return s.events[s.evOff[i]:s.evOff[i+1]:s.evOff[i+1]]
}

// seriesSet is a registered series archive, sharded at ingest. As with
// tuples, scan (base shards + deltas) is what query plans fan out
// over; raw retains the registration rows for full recompaction and is
// nil on snapshot-restored sets (raw days are never persisted).
type seriesSet struct {
	total  int
	shards []*seriesShard
	deltas []*seriesShard
	scan   []*seriesShard
	raw    []synth.RegionSeries
	gen    uint64
}

// newSeriesShard builds one shard over part: metadata summaries plus
// the flat day-classified event plane. This is the only constructor —
// base shards at registration, delta segments at append — so deltas
// are bit-identical to the shards a from-scratch build would hold.
func newSeriesShard(part []synth.RegionSeries) *seriesShard {
	sums := make([]synth.DrySpellStats, len(part))
	total := 0
	for i, reg := range part {
		sums[i] = synth.SummarizeSeries(reg)
		total += len(reg.Days)
	}
	events := make([]fsm.Event, 0, total)
	evOff := make([]int, 1, len(part)+1)
	for _, reg := range part {
		for _, d := range reg.Days {
			events = append(events, fsm.ClassifyDay(d))
		}
		evOff = append(evOff, len(events))
	}
	return &seriesShard{regions: part, sums: sums, events: events, evOff: evOff}
}

func newSeriesSet(rs []synth.RegionSeries, shards int) *seriesSet {
	ss := &seriesSet{total: len(rs), raw: rs, gen: 1}
	for _, r := range partition(len(rs), shards) {
		ss.shards = append(ss.shards, newSeriesShard(rs[r[0]:r[1]]))
	}
	ss.scan = ss.shards
	return ss
}

// withDelta returns a new set value with sh appended as one more delta
// segment; sh is built by the caller outside the engine lock.
func (ss *seriesSet) withDelta(sh *seriesShard) *seriesSet {
	ns := &seriesSet{
		total:  ss.total + len(sh.regions),
		shards: ss.shards,
		deltas: append(ss.deltas[:len(ss.deltas):len(ss.deltas)], sh),
		raw:    ss.raw,
		gen:    ss.gen + 1,
	}
	ns.scan = append(ss.shards[:len(ss.shards):len(ss.shards)], ns.deltas...)
	return ns
}

// deltaRows counts regions living in delta segments.
func (ss *seriesSet) deltaRows() int {
	n := 0
	for _, d := range ss.deltas {
		n += len(d.regions)
	}
	return n
}

// compact folds deltas away (see tupleSet.compact): full rebuild when
// the raw registration rows are at hand (delta shards always carry
// raw regions — appends supply them), else a merge of all deltas into
// one segment. Returns nil when nothing productive can be done.
func (ss *seriesSet) compact(shards int) *seriesSet {
	if len(ss.deltas) == 0 {
		return nil
	}
	if ss.raw != nil {
		all := make([]synth.RegionSeries, 0, ss.total)
		all = append(all, ss.raw...)
		for _, d := range ss.deltas {
			all = append(all, d.regions...)
		}
		return newSeriesSet(all, shards).withGen(ss.gen)
	}
	if len(ss.deltas) == 1 {
		return nil
	}
	nr := ss.deltaRows()
	regions := make([]synth.RegionSeries, 0, nr)
	sums := make([]synth.DrySpellStats, 0, nr)
	var events []fsm.Event
	evOff := make([]int, 1, nr+1)
	for _, d := range ss.deltas {
		regions = append(regions, d.regions...)
		sums = append(sums, d.sums...)
		for i := range d.regions {
			events = append(events, d.eventsOf(i)...)
			evOff = append(evOff, len(events))
		}
	}
	d := &seriesShard{regions: regions, sums: sums, events: events, evOff: evOff}
	ns := &seriesSet{
		total:  ss.total,
		shards: ss.shards,
		deltas: []*seriesShard{d},
		gen:    ss.gen,
	}
	ns.scan = append(ss.shards[:len(ss.shards):len(ss.shards)], d)
	return ns
}

// withGen overrides the generation on a freshly built set (compaction
// preserves the pre-compaction generation: content is unchanged).
func (ss *seriesSet) withGen(gen uint64) *seriesSet {
	ss.gen = gen
	return ss
}

// restoredSeriesSet assembles a series set from snapshot planes: the
// region table (IDs only — raw days are not persisted), precomputed
// summaries, and the global flat event plane with per-region lengths.
// Shard boundaries re-derive from partition(n, shards), which is the
// same deterministic layout newSeriesSet used at snapshot time, so
// per-shard state is identical to the built engine's.
func restoredSeriesSet(ids []int, sums []synth.DrySpellStats, events []fsm.Event, days []int, shards int) (*seriesSet, error) {
	n := len(ids)
	if len(sums) != n || len(days) != n {
		return nil, fmt.Errorf("core: series planes: %d ids, %d sums, %d day counts", n, len(sums), len(days))
	}
	gOff := make([]int, n+1)
	for i, d := range days {
		if d < 0 {
			return nil, fmt.Errorf("core: series planes: region %d has %d days", i, d)
		}
		gOff[i+1] = gOff[i] + d
	}
	if gOff[n] != len(events) {
		return nil, fmt.Errorf("core: series planes: %d events for %d summed days", len(events), gOff[n])
	}
	regions := make([]synth.RegionSeries, n)
	for i, id := range ids {
		regions[i] = synth.RegionSeries{Region: id}
	}
	ss := &seriesSet{total: n, gen: 1}
	for _, r := range partition(n, shards) {
		lo, hi := r[0], r[1]
		evOff := make([]int, hi-lo+1)
		for i := lo; i <= hi; i++ {
			evOff[i-lo] = gOff[i] - gOff[lo]
		}
		ss.shards = append(ss.shards, &seriesShard{
			regions: regions[lo:hi],
			sums:    sums[lo:hi],
			events:  events[gOff[lo]:gOff[hi]],
			evOff:   evOff,
		})
	}
	ss.scan = ss.shards
	return ss, nil
}

// wellShard is one partition of a well-log archive with its strata
// flattened into struct-of-arrays planes: one contiguous column per
// stratum field, all wells back to back, so SPROC's unary/pair grades
// index flat float64 runs instead of chasing a []Stratum slice header
// per well. Values are copied verbatim; grades are bit-identical.
type wellShard struct {
	wells []synth.WellLog
	// Columnar strata planes; stratum j of well i sits at off[i]+j.
	lith    []synth.Lithology
	topFt   []float64
	thickFt []float64
	gamma   []float64
	off     []int
}

// strataLen returns well i's stratum count.
func (s *wellShard) strataLen(i int) int { return s.off[i+1] - s.off[i] }

// wellSet is a registered well-log archive, sharded at ingest. scan
// (base shards + deltas) is what query plans fan out over; raw retains
// the registration rows for full recompaction (nil on restored sets).
type wellSet struct {
	total  int
	shards []*wellShard
	deltas []*wellShard
	scan   []*wellShard
	raw    []synth.WellLog
	gen    uint64
}

// newWellShard flattens part's strata into the columnar planes — the
// one constructor base shards and delta segments share.
func newWellShard(part []synth.WellLog) *wellShard {
	total := 0
	for _, w := range part {
		total += len(w.Strata)
	}
	sh := &wellShard{
		wells:   part,
		lith:    make([]synth.Lithology, 0, total),
		topFt:   make([]float64, 0, total),
		thickFt: make([]float64, 0, total),
		gamma:   make([]float64, 0, total),
		off:     make([]int, 1, len(part)+1),
	}
	for _, w := range part {
		for _, st := range w.Strata {
			sh.lith = append(sh.lith, st.Lith)
			sh.topFt = append(sh.topFt, st.TopFt)
			sh.thickFt = append(sh.thickFt, st.ThickFt)
			sh.gamma = append(sh.gamma, st.GammaAPI)
		}
		sh.off = append(sh.off, len(sh.lith))
	}
	return sh
}

func newWellSet(ws []synth.WellLog, shards int) *wellSet {
	s := &wellSet{total: len(ws), raw: ws, gen: 1}
	for _, r := range partition(len(ws), shards) {
		s.shards = append(s.shards, newWellShard(ws[r[0]:r[1]]))
	}
	s.scan = s.shards
	return s
}

// withDelta returns a new set value with sh appended as one more delta
// segment; sh is built by the caller outside the engine lock.
func (s *wellSet) withDelta(sh *wellShard) *wellSet {
	ns := &wellSet{
		total:  s.total + len(sh.wells),
		shards: s.shards,
		deltas: append(s.deltas[:len(s.deltas):len(s.deltas)], sh),
		raw:    s.raw,
		gen:    s.gen + 1,
	}
	ns.scan = append(s.shards[:len(s.shards):len(s.shards)], ns.deltas...)
	return ns
}

// deltaRows counts wells living in delta segments.
func (s *wellSet) deltaRows() int {
	n := 0
	for _, d := range s.deltas {
		n += len(d.wells)
	}
	return n
}

// compact folds deltas away (see tupleSet.compact): full rebuild when
// the raw registration rows are at hand, else a merge of all deltas
// into one segment. Returns nil when nothing productive can be done.
func (s *wellSet) compact(shards int) *wellSet {
	if len(s.deltas) == 0 {
		return nil
	}
	if s.raw != nil {
		all := make([]synth.WellLog, 0, s.total)
		all = append(all, s.raw...)
		for _, d := range s.deltas {
			all = append(all, d.wells...)
		}
		ns := newWellSet(all, shards)
		ns.gen = s.gen
		return ns
	}
	if len(s.deltas) == 1 {
		return nil
	}
	nw := s.deltaRows()
	sh := &wellShard{
		wells: make([]synth.WellLog, 0, nw),
		off:   make([]int, 1, nw+1),
	}
	for _, d := range s.deltas {
		sh.wells = append(sh.wells, d.wells...)
		sh.lith = append(sh.lith, d.lith...)
		sh.topFt = append(sh.topFt, d.topFt...)
		sh.thickFt = append(sh.thickFt, d.thickFt...)
		sh.gamma = append(sh.gamma, d.gamma...)
		for i := range d.wells {
			sh.off = append(sh.off, sh.off[len(sh.off)-1]+d.strataLen(i))
		}
	}
	ns := &wellSet{
		total:  s.total,
		shards: s.shards,
		deltas: []*wellShard{sh},
		gen:    s.gen,
	}
	ns.scan = append(s.shards[:len(s.shards):len(s.shards)], sh)
	return ns
}

// restoredWellSet assembles a well set from snapshot planes: well IDs,
// per-well stratum counts, and the four global strata columns. The
// float columns are adopted (they may be mmap-backed); shard views
// slice into them without copying. As with series, partition(n,
// shards) reproduces the snapshot-time layout exactly.
func restoredWellSet(ids []int, counts []int, lith []synth.Lithology, topFt, thickFt, gamma []float64, shards int) (*wellSet, error) {
	n := len(ids)
	if len(counts) != n {
		return nil, fmt.Errorf("core: well planes: %d ids, %d counts", n, len(counts))
	}
	gOff := make([]int, n+1)
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: well planes: well %d has %d strata", i, c)
		}
		gOff[i+1] = gOff[i] + c
	}
	total := gOff[n]
	if len(lith) != total || len(topFt) != total || len(thickFt) != total || len(gamma) != total {
		return nil, fmt.Errorf("core: well planes: columns %d/%d/%d/%d for %d strata",
			len(lith), len(topFt), len(thickFt), len(gamma), total)
	}
	wells := make([]synth.WellLog, n)
	for i, id := range ids {
		wells[i] = synth.WellLog{Well: id}
	}
	s := &wellSet{total: n, gen: 1}
	for _, r := range partition(n, shards) {
		lo, hi := r[0], r[1]
		off := make([]int, hi-lo+1)
		for i := lo; i <= hi; i++ {
			off[i-lo] = gOff[i] - gOff[lo]
		}
		s.shards = append(s.shards, &wellShard{
			wells:   wells[lo:hi],
			lith:    lith[gOff[lo]:gOff[hi]],
			topFt:   topFt[gOff[lo]:gOff[hi]],
			thickFt: thickFt[gOff[lo]:gOff[hi]],
			gamma:   gamma[gOff[lo]:gOff[hi]],
			off:     off,
		})
	}
	s.scan = s.shards
	return s, nil
}

// sceneSet is a registered raster archive. The scene's pyramid (built
// by archive.BuildScene) is shared read-only across shards; what is
// partitioned is the coarsest-level cell frontier, so each shard runs
// branch-and-bound over its own territory of the scene. The tile
// feature matrix is the knowledge family's columnar plane: one flat
// row of per-band statistics per tile, with a fixed column-name table
// the query's rule set is compiled against once per request — no
// per-tile map construction, no string hashing on the scan path.
type sceneSet struct {
	scene *archive.Scene
	roots [][]progressive.Cell
	// featCols names the feature matrix's columns ("<band>.mean",
	// ".std", ".min", ".max" per band, band-major).
	featCols []string
	// feat is the flat matrix: tile ti's row is
	// feat[ti*len(featCols) : (ti+1)*len(featCols)].
	feat []float64
	// gen is the dataset's cache-invalidation generation. Scenes are
	// not appendable (a raster pyramid has no meaningful row append),
	// so it stays 1 for the dataset's lifetime — carried anyway so
	// every dataset kind speaks the same invalidation protocol.
	gen uint64
}

// featRow returns tile ti's feature row.
func (ss *sceneSet) featRow(ti int) []float64 {
	w := len(ss.featCols)
	return ss.feat[ti*w : (ti+1)*w : (ti+1)*w]
}

// validateSceneFeatures rejects a scene whose feature table does not
// line up with its band and tile tables (possible for archives decoded
// from a corrupt or truncated stream) BEFORE newSceneSet walks it — a
// malformed archive must fail registration, not panic it.
func validateSceneFeatures(sc *archive.Scene) error {
	if len(sc.TileFeatures) != sc.NumBands() {
		return fmt.Errorf("core: scene has %d feature bands for %d bands", len(sc.TileFeatures), sc.NumBands())
	}
	for b, feats := range sc.TileFeatures {
		if len(feats) != len(sc.Tiles) {
			return fmt.Errorf("core: scene band %d has %d tile features for %d tiles", b, len(feats), len(sc.Tiles))
		}
	}
	return nil
}

func newSceneSet(sc *archive.Scene, shards int) *sceneSet {
	ss := &sceneSet{scene: sc, gen: 1}
	ss.shardRoots(shards)
	nb := sc.NumBands()
	ss.featCols = featColumns(sc)
	ss.feat = make([]float64, len(sc.Tiles)*len(ss.featCols))
	for b := 0; b < nb; b++ {
		for ti := range sc.Tiles {
			st := sc.TileFeatures[b][ti].Stats
			row := ss.feat[ti*len(ss.featCols):]
			row[b*4] = st.Mean
			row[b*4+1] = st.Std
			row[b*4+2] = st.Min
			row[b*4+3] = st.Max
		}
	}
	return ss
}

// shardRoots partitions the coarsest-level cell frontier. Roots reads
// only the pyramid's flat planes, so this never materializes Grid
// levels on a restored scene.
func (ss *sceneSet) shardRoots(shards int) {
	roots := progressive.Roots(ss.scene.Pyramid())
	for _, r := range partition(len(roots), shards) {
		ss.roots = append(ss.roots, roots[r[0]:r[1]])
	}
}

// featColumns derives the fixed column-name table from the band list —
// deterministic, so built and restored engines compile rules against
// identical schemas.
func featColumns(sc *archive.Scene) []string {
	cols := make([]string, 0, sc.NumBands()*4)
	for _, name := range sc.BandNames {
		cols = append(cols, name+".mean", name+".std", name+".min", name+".max")
	}
	return cols
}

// restoredSceneSet assembles a scene set around a restored archive and
// the persisted feature matrix (adopted, possibly mmap-backed). Roots
// and column names are recomputed — both are cheap and deterministic —
// while the matrix itself is served from the snapshot.
func restoredSceneSet(sc *archive.Scene, feat []float64, shards int) (*sceneSet, error) {
	ss := &sceneSet{scene: sc, featCols: featColumns(sc), gen: 1}
	if len(feat) != len(sc.Tiles)*len(ss.featCols) {
		return nil, fmt.Errorf("core: scene planes: feature matrix len %d for %d tiles × %d cols",
			len(feat), len(sc.Tiles), len(ss.featCols))
	}
	ss.feat = feat
	ss.shardRoots(shards)
	return ss, nil
}
