// Shard plumbing for the engine: every dataset is partitioned into N
// contiguous shards at ingest, each shard carrying its own lazily built
// model-specific index (Onion layers for tuple archives, an assigned
// slice of pyramid root cells for scenes, precomputed metadata
// summaries for series). Queries fan out one worker per shard and merge
// partial top-K heaps; because shard data is immutable after
// registration and index builds are guarded by sync.Once, the whole
// structure is safe for concurrent queries without locks on the hot
// path.

package core

import (
	"fmt"
	"sync"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/synth"
)

// partition splits n items into at most `want` contiguous non-empty
// ranges [lo, hi). Sizes differ by at most one, and the layout depends
// only on (n, want), so shard boundaries — and therefore global item
// IDs — are stable across runs.
func partition(n, want int) [][2]int {
	if n <= 0 {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	out := make([][2]int, 0, want)
	base, rem := n/want, n%want
	lo := 0
	for s := 0; s < want; s++ {
		hi := lo + base
		if s < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// tupleShard is one partition of a tuple archive. Its Onion index is
// built on first use (sync.Once makes concurrent first queries safe)
// over the shard's sub-slice, so result IDs are local and must be
// shifted by offset into the global index space.
type tupleShard struct {
	offset int
	points [][]float64

	once  sync.Once
	index *onion.Index
	err   error
}

func (s *tupleShard) ensureIndex(opt onion.Options) (*onion.Index, error) {
	s.once.Do(func() {
		s.index, s.err = onion.Build(s.points, opt)
	})
	return s.index, s.err
}

// tupleSet is a registered tuple archive, sharded at ingest. The flat
// row slice is retained (shards alias its backing array) for the
// sequential-scan baseline, which partitions per item, not per shard.
type tupleSet struct {
	points [][]float64
	shards []*tupleShard
}

func newTupleSet(points [][]float64, shards int) *tupleSet {
	ts := &tupleSet{points: points}
	for _, r := range partition(len(points), shards) {
		ts.shards = append(ts.shards, &tupleShard{
			offset: r[0],
			points: points[r[0]:r[1]],
		})
	}
	return ts
}

// seriesShard is one partition of a series archive with its
// metadata-level summaries (the prefilter index) built at ingest, plus
// the columnar event plane: every region's day-classified FSM events
// in ONE flat allocation, so a query runs machines over contiguous
// event runs instead of re-classifying raw weather structs per query
// per region. Classification is deterministic, so precomputing it at
// ingest changes results by exactly nothing.
type seriesShard struct {
	regions []synth.RegionSeries
	sums    []synth.DrySpellStats
	// events is the flat event plane; region i of the shard occupies
	// events[evOff[i]:evOff[i+1]].
	events []fsm.Event
	evOff  []int
}

// eventsOf returns region i's precomputed event run.
func (s *seriesShard) eventsOf(i int) []fsm.Event {
	return s.events[s.evOff[i]:s.evOff[i+1]:s.evOff[i+1]]
}

// seriesSet is a registered series archive, sharded at ingest.
type seriesSet struct {
	total  int
	shards []*seriesShard
}

func newSeriesSet(rs []synth.RegionSeries, shards int) *seriesSet {
	ss := &seriesSet{total: len(rs)}
	for _, r := range partition(len(rs), shards) {
		part := rs[r[0]:r[1]]
		sums := make([]synth.DrySpellStats, len(part))
		total := 0
		for i, reg := range part {
			sums[i] = synth.SummarizeSeries(reg)
			total += len(reg.Days)
		}
		events := make([]fsm.Event, 0, total)
		evOff := make([]int, 1, len(part)+1)
		for _, reg := range part {
			for _, d := range reg.Days {
				events = append(events, fsm.ClassifyDay(d))
			}
			evOff = append(evOff, len(events))
		}
		ss.shards = append(ss.shards, &seriesShard{
			regions: part, sums: sums, events: events, evOff: evOff,
		})
	}
	return ss
}

// wellShard is one partition of a well-log archive with its strata
// flattened into struct-of-arrays planes: one contiguous column per
// stratum field, all wells back to back, so SPROC's unary/pair grades
// index flat float64 runs instead of chasing a []Stratum slice header
// per well. Values are copied verbatim; grades are bit-identical.
type wellShard struct {
	wells []synth.WellLog
	// Columnar strata planes; stratum j of well i sits at off[i]+j.
	lith    []synth.Lithology
	topFt   []float64
	thickFt []float64
	gamma   []float64
	off     []int
}

// strataLen returns well i's stratum count.
func (s *wellShard) strataLen(i int) int { return s.off[i+1] - s.off[i] }

// wellSet is a registered well-log archive, sharded at ingest.
type wellSet struct {
	shards []*wellShard
}

func newWellSet(ws []synth.WellLog, shards int) *wellSet {
	s := &wellSet{}
	for _, r := range partition(len(ws), shards) {
		part := ws[r[0]:r[1]]
		total := 0
		for _, w := range part {
			total += len(w.Strata)
		}
		sh := &wellShard{
			wells:   part,
			lith:    make([]synth.Lithology, 0, total),
			topFt:   make([]float64, 0, total),
			thickFt: make([]float64, 0, total),
			gamma:   make([]float64, 0, total),
			off:     make([]int, 1, len(part)+1),
		}
		for _, w := range part {
			for _, st := range w.Strata {
				sh.lith = append(sh.lith, st.Lith)
				sh.topFt = append(sh.topFt, st.TopFt)
				sh.thickFt = append(sh.thickFt, st.ThickFt)
				sh.gamma = append(sh.gamma, st.GammaAPI)
			}
			sh.off = append(sh.off, len(sh.lith))
		}
		s.shards = append(s.shards, sh)
	}
	return s
}

// sceneSet is a registered raster archive. The scene's pyramid (built
// by archive.BuildScene) is shared read-only across shards; what is
// partitioned is the coarsest-level cell frontier, so each shard runs
// branch-and-bound over its own territory of the scene. The tile
// feature matrix is the knowledge family's columnar plane: one flat
// row of per-band statistics per tile, with a fixed column-name table
// the query's rule set is compiled against once per request — no
// per-tile map construction, no string hashing on the scan path.
type sceneSet struct {
	scene *archive.Scene
	roots [][]progressive.Cell
	// featCols names the feature matrix's columns ("<band>.mean",
	// ".std", ".min", ".max" per band, band-major).
	featCols []string
	// feat is the flat matrix: tile ti's row is
	// feat[ti*len(featCols) : (ti+1)*len(featCols)].
	feat []float64
}

// featRow returns tile ti's feature row.
func (ss *sceneSet) featRow(ti int) []float64 {
	w := len(ss.featCols)
	return ss.feat[ti*w : (ti+1)*w : (ti+1)*w]
}

// validateSceneFeatures rejects a scene whose feature table does not
// line up with its band and tile tables (possible for archives decoded
// from a corrupt or truncated stream) BEFORE newSceneSet walks it — a
// malformed archive must fail registration, not panic it.
func validateSceneFeatures(sc *archive.Scene) error {
	if len(sc.TileFeatures) != sc.NumBands() {
		return fmt.Errorf("core: scene has %d feature bands for %d bands", len(sc.TileFeatures), sc.NumBands())
	}
	for b, feats := range sc.TileFeatures {
		if len(feats) != len(sc.Tiles) {
			return fmt.Errorf("core: scene band %d has %d tile features for %d tiles", b, len(feats), len(sc.Tiles))
		}
	}
	return nil
}

func newSceneSet(sc *archive.Scene, shards int) *sceneSet {
	ss := &sceneSet{scene: sc}
	roots := progressive.Roots(sc.Pyramid())
	for _, r := range partition(len(roots), shards) {
		ss.roots = append(ss.roots, roots[r[0]:r[1]])
	}
	nb := sc.NumBands()
	ss.featCols = make([]string, 0, nb*4)
	for _, name := range sc.BandNames {
		ss.featCols = append(ss.featCols,
			name+".mean", name+".std", name+".min", name+".max")
	}
	ss.feat = make([]float64, len(sc.Tiles)*len(ss.featCols))
	for b := 0; b < nb; b++ {
		for ti := range sc.Tiles {
			st := sc.TileFeatures[b][ti].Stats
			row := ss.feat[ti*len(ss.featCols):]
			row[b*4] = st.Mean
			row[b*4+1] = st.Std
			row[b*4+2] = st.Min
			row[b*4+3] = st.Max
		}
	}
	return ss
}
