// Shard plumbing for the engine: every dataset is partitioned into N
// contiguous shards at ingest, each shard carrying its own lazily built
// model-specific index (Onion layers for tuple archives, an assigned
// slice of pyramid root cells for scenes, precomputed metadata
// summaries for series). Queries fan out one worker per shard and merge
// partial top-K heaps; because shard data is immutable after
// registration and index builds are guarded by sync.Once, the whole
// structure is safe for concurrent queries without locks on the hot
// path.

package core

import (
	"fmt"
	"sync"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/synth"
)

// partition splits n items into at most `want` contiguous non-empty
// ranges [lo, hi). Sizes differ by at most one, and the layout depends
// only on (n, want), so shard boundaries — and therefore global item
// IDs — are stable across runs.
func partition(n, want int) [][2]int {
	if n <= 0 {
		return nil
	}
	if want < 1 {
		want = 1
	}
	if want > n {
		want = n
	}
	out := make([][2]int, 0, want)
	base, rem := n/want, n%want
	lo := 0
	for s := 0; s < want; s++ {
		hi := lo + base
		if s < rem {
			hi++
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

// tupleShard is one partition of a tuple archive. Its Onion index is
// built on first use (sync.Once makes concurrent first queries safe)
// over the shard's sub-slice, so result IDs are local and must be
// shifted by offset into the global index space.
type tupleShard struct {
	offset int
	points [][]float64

	once  sync.Once
	index *onion.Index
	err   error
}

func (s *tupleShard) ensureIndex(opt onion.Options) (*onion.Index, error) {
	s.once.Do(func() {
		s.index, s.err = onion.Build(s.points, opt)
	})
	return s.index, s.err
}

// tupleSet is a registered tuple archive, sharded at ingest. The flat
// row slice is retained (shards alias its backing array) for the
// sequential-scan baseline, which partitions per item, not per shard;
// a snapshot-restored set has points == nil (only the built indexes
// are persisted) and rows carries the logical count on both paths.
type tupleSet struct {
	points [][]float64
	rows   int
	shards []*tupleShard
}

func newTupleSet(points [][]float64, shards int) *tupleSet {
	ts := &tupleSet{points: points, rows: len(points)}
	for _, r := range partition(len(points), shards) {
		ts.shards = append(ts.shards, &tupleShard{
			offset: r[0],
			points: points[r[0]:r[1]],
		})
	}
	return ts
}

// restoredTupleShard wraps a snapshot-restored Onion index. The build
// Once is burned immediately so ensureIndex returns the restored index
// without ever consulting points (which stay nil).
func restoredTupleShard(offset int, ix *onion.Index) *tupleShard {
	sh := &tupleShard{offset: offset}
	sh.once.Do(func() { sh.index = ix })
	return sh
}

// restoredTupleSet assembles a tuple set from restored shards. points
// stays nil: the sequential-scan baseline is unavailable on a restored
// engine (the raw rows were never persisted), which parallel.go turns
// into an explicit error rather than a panic.
func restoredTupleSet(rows int, shards []*tupleShard) *tupleSet {
	return &tupleSet{rows: rows, shards: shards}
}

// seriesShard is one partition of a series archive with its
// metadata-level summaries (the prefilter index) built at ingest, plus
// the columnar event plane: every region's day-classified FSM events
// in ONE flat allocation, so a query runs machines over contiguous
// event runs instead of re-classifying raw weather structs per query
// per region. Classification is deterministic, so precomputing it at
// ingest changes results by exactly nothing.
type seriesShard struct {
	regions []synth.RegionSeries
	sums    []synth.DrySpellStats
	// events is the flat event plane; region i of the shard occupies
	// events[evOff[i]:evOff[i+1]].
	events []fsm.Event
	evOff  []int
}

// eventsOf returns region i's precomputed event run.
func (s *seriesShard) eventsOf(i int) []fsm.Event {
	return s.events[s.evOff[i]:s.evOff[i+1]:s.evOff[i+1]]
}

// seriesSet is a registered series archive, sharded at ingest.
type seriesSet struct {
	total  int
	shards []*seriesShard
}

func newSeriesSet(rs []synth.RegionSeries, shards int) *seriesSet {
	ss := &seriesSet{total: len(rs)}
	for _, r := range partition(len(rs), shards) {
		part := rs[r[0]:r[1]]
		sums := make([]synth.DrySpellStats, len(part))
		total := 0
		for i, reg := range part {
			sums[i] = synth.SummarizeSeries(reg)
			total += len(reg.Days)
		}
		events := make([]fsm.Event, 0, total)
		evOff := make([]int, 1, len(part)+1)
		for _, reg := range part {
			for _, d := range reg.Days {
				events = append(events, fsm.ClassifyDay(d))
			}
			evOff = append(evOff, len(events))
		}
		ss.shards = append(ss.shards, &seriesShard{
			regions: part, sums: sums, events: events, evOff: evOff,
		})
	}
	return ss
}

// restoredSeriesSet assembles a series set from snapshot planes: the
// region table (IDs only — raw days are not persisted), precomputed
// summaries, and the global flat event plane with per-region lengths.
// Shard boundaries re-derive from partition(n, shards), which is the
// same deterministic layout newSeriesSet used at snapshot time, so
// per-shard state is identical to the built engine's.
func restoredSeriesSet(ids []int, sums []synth.DrySpellStats, events []fsm.Event, days []int, shards int) (*seriesSet, error) {
	n := len(ids)
	if len(sums) != n || len(days) != n {
		return nil, fmt.Errorf("core: series planes: %d ids, %d sums, %d day counts", n, len(sums), len(days))
	}
	gOff := make([]int, n+1)
	for i, d := range days {
		if d < 0 {
			return nil, fmt.Errorf("core: series planes: region %d has %d days", i, d)
		}
		gOff[i+1] = gOff[i] + d
	}
	if gOff[n] != len(events) {
		return nil, fmt.Errorf("core: series planes: %d events for %d summed days", len(events), gOff[n])
	}
	regions := make([]synth.RegionSeries, n)
	for i, id := range ids {
		regions[i] = synth.RegionSeries{Region: id}
	}
	ss := &seriesSet{total: n}
	for _, r := range partition(n, shards) {
		lo, hi := r[0], r[1]
		evOff := make([]int, hi-lo+1)
		for i := lo; i <= hi; i++ {
			evOff[i-lo] = gOff[i] - gOff[lo]
		}
		ss.shards = append(ss.shards, &seriesShard{
			regions: regions[lo:hi],
			sums:    sums[lo:hi],
			events:  events[gOff[lo]:gOff[hi]],
			evOff:   evOff,
		})
	}
	return ss, nil
}

// wellShard is one partition of a well-log archive with its strata
// flattened into struct-of-arrays planes: one contiguous column per
// stratum field, all wells back to back, so SPROC's unary/pair grades
// index flat float64 runs instead of chasing a []Stratum slice header
// per well. Values are copied verbatim; grades are bit-identical.
type wellShard struct {
	wells []synth.WellLog
	// Columnar strata planes; stratum j of well i sits at off[i]+j.
	lith    []synth.Lithology
	topFt   []float64
	thickFt []float64
	gamma   []float64
	off     []int
}

// strataLen returns well i's stratum count.
func (s *wellShard) strataLen(i int) int { return s.off[i+1] - s.off[i] }

// wellSet is a registered well-log archive, sharded at ingest.
type wellSet struct {
	shards []*wellShard
}

func newWellSet(ws []synth.WellLog, shards int) *wellSet {
	s := &wellSet{}
	for _, r := range partition(len(ws), shards) {
		part := ws[r[0]:r[1]]
		total := 0
		for _, w := range part {
			total += len(w.Strata)
		}
		sh := &wellShard{
			wells:   part,
			lith:    make([]synth.Lithology, 0, total),
			topFt:   make([]float64, 0, total),
			thickFt: make([]float64, 0, total),
			gamma:   make([]float64, 0, total),
			off:     make([]int, 1, len(part)+1),
		}
		for _, w := range part {
			for _, st := range w.Strata {
				sh.lith = append(sh.lith, st.Lith)
				sh.topFt = append(sh.topFt, st.TopFt)
				sh.thickFt = append(sh.thickFt, st.ThickFt)
				sh.gamma = append(sh.gamma, st.GammaAPI)
			}
			sh.off = append(sh.off, len(sh.lith))
		}
		s.shards = append(s.shards, sh)
	}
	return s
}

// restoredWellSet assembles a well set from snapshot planes: well IDs,
// per-well stratum counts, and the four global strata columns. The
// float columns are adopted (they may be mmap-backed); shard views
// slice into them without copying. As with series, partition(n,
// shards) reproduces the snapshot-time layout exactly.
func restoredWellSet(ids []int, counts []int, lith []synth.Lithology, topFt, thickFt, gamma []float64, shards int) (*wellSet, error) {
	n := len(ids)
	if len(counts) != n {
		return nil, fmt.Errorf("core: well planes: %d ids, %d counts", n, len(counts))
	}
	gOff := make([]int, n+1)
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("core: well planes: well %d has %d strata", i, c)
		}
		gOff[i+1] = gOff[i] + c
	}
	total := gOff[n]
	if len(lith) != total || len(topFt) != total || len(thickFt) != total || len(gamma) != total {
		return nil, fmt.Errorf("core: well planes: columns %d/%d/%d/%d for %d strata",
			len(lith), len(topFt), len(thickFt), len(gamma), total)
	}
	wells := make([]synth.WellLog, n)
	for i, id := range ids {
		wells[i] = synth.WellLog{Well: id}
	}
	s := &wellSet{}
	for _, r := range partition(n, shards) {
		lo, hi := r[0], r[1]
		off := make([]int, hi-lo+1)
		for i := lo; i <= hi; i++ {
			off[i-lo] = gOff[i] - gOff[lo]
		}
		s.shards = append(s.shards, &wellShard{
			wells:   wells[lo:hi],
			lith:    lith[gOff[lo]:gOff[hi]],
			topFt:   topFt[gOff[lo]:gOff[hi]],
			thickFt: thickFt[gOff[lo]:gOff[hi]],
			gamma:   gamma[gOff[lo]:gOff[hi]],
			off:     off,
		})
	}
	return s, nil
}

// sceneSet is a registered raster archive. The scene's pyramid (built
// by archive.BuildScene) is shared read-only across shards; what is
// partitioned is the coarsest-level cell frontier, so each shard runs
// branch-and-bound over its own territory of the scene. The tile
// feature matrix is the knowledge family's columnar plane: one flat
// row of per-band statistics per tile, with a fixed column-name table
// the query's rule set is compiled against once per request — no
// per-tile map construction, no string hashing on the scan path.
type sceneSet struct {
	scene *archive.Scene
	roots [][]progressive.Cell
	// featCols names the feature matrix's columns ("<band>.mean",
	// ".std", ".min", ".max" per band, band-major).
	featCols []string
	// feat is the flat matrix: tile ti's row is
	// feat[ti*len(featCols) : (ti+1)*len(featCols)].
	feat []float64
}

// featRow returns tile ti's feature row.
func (ss *sceneSet) featRow(ti int) []float64 {
	w := len(ss.featCols)
	return ss.feat[ti*w : (ti+1)*w : (ti+1)*w]
}

// validateSceneFeatures rejects a scene whose feature table does not
// line up with its band and tile tables (possible for archives decoded
// from a corrupt or truncated stream) BEFORE newSceneSet walks it — a
// malformed archive must fail registration, not panic it.
func validateSceneFeatures(sc *archive.Scene) error {
	if len(sc.TileFeatures) != sc.NumBands() {
		return fmt.Errorf("core: scene has %d feature bands for %d bands", len(sc.TileFeatures), sc.NumBands())
	}
	for b, feats := range sc.TileFeatures {
		if len(feats) != len(sc.Tiles) {
			return fmt.Errorf("core: scene band %d has %d tile features for %d tiles", b, len(feats), len(sc.Tiles))
		}
	}
	return nil
}

func newSceneSet(sc *archive.Scene, shards int) *sceneSet {
	ss := &sceneSet{scene: sc}
	ss.shardRoots(shards)
	nb := sc.NumBands()
	ss.featCols = featColumns(sc)
	ss.feat = make([]float64, len(sc.Tiles)*len(ss.featCols))
	for b := 0; b < nb; b++ {
		for ti := range sc.Tiles {
			st := sc.TileFeatures[b][ti].Stats
			row := ss.feat[ti*len(ss.featCols):]
			row[b*4] = st.Mean
			row[b*4+1] = st.Std
			row[b*4+2] = st.Min
			row[b*4+3] = st.Max
		}
	}
	return ss
}

// shardRoots partitions the coarsest-level cell frontier. Roots reads
// only the pyramid's flat planes, so this never materializes Grid
// levels on a restored scene.
func (ss *sceneSet) shardRoots(shards int) {
	roots := progressive.Roots(ss.scene.Pyramid())
	for _, r := range partition(len(roots), shards) {
		ss.roots = append(ss.roots, roots[r[0]:r[1]])
	}
}

// featColumns derives the fixed column-name table from the band list —
// deterministic, so built and restored engines compile rules against
// identical schemas.
func featColumns(sc *archive.Scene) []string {
	cols := make([]string, 0, sc.NumBands()*4)
	for _, name := range sc.BandNames {
		cols = append(cols, name+".mean", name+".std", name+".min", name+".max")
	}
	return cols
}

// restoredSceneSet assembles a scene set around a restored archive and
// the persisted feature matrix (adopted, possibly mmap-backed). Roots
// and column names are recomputed — both are cheap and deterministic —
// while the matrix itself is served from the snapshot.
func restoredSceneSet(sc *archive.Scene, feat []float64, shards int) (*sceneSet, error) {
	ss := &sceneSet{scene: sc, featCols: featColumns(sc)}
	if len(feat) != len(sc.Tiles)*len(ss.featCols) {
		return nil, fmt.Errorf("core: scene planes: feature matrix len %d for %d tiles × %d cols",
			len(feat), len(sc.Tiles), len(ss.featCols))
	}
	ss.feat = feat
	ss.shardRoots(shards)
	return ss, nil
}
