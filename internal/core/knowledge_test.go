package core

import (
	"testing"

	"modelir/internal/archive"
	"modelir/internal/bayes"
	"modelir/internal/synth"
)

func knowledgeEngine(t *testing.T) (*Engine, *archive.Scene) {
	t.Helper()
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 31, W: 128, H: 128})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 16, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine()
	if err := e.AddScene("s", ar); err != nil {
		t.Fatal(err)
	}
	return e, ar
}

func TestKnowledgeTopKTiles(t *testing.T) {
	e, ar := knowledgeEngine(t)
	items, st, err := e.KnowledgeTopKTiles("s", HPSTileRules(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.TilesScored != len(ar.Tiles) {
		t.Fatalf("scored %d of %d tiles", st.TilesScored, len(ar.Tiles))
	}
	if st.RawSamplesAvoided != 128*128*ar.NumBands() {
		t.Fatalf("raw samples avoided %d", st.RawSamplesAvoided)
	}
	// Scores are valid rule grades, descending.
	for i, it := range items {
		if it.Score < 0 || it.Score > 1 {
			t.Fatalf("score %v out of [0,1]", it.Score)
		}
		if i > 0 && items[i-1].Score < it.Score {
			t.Fatal("results not descending")
		}
		if it.ID < 0 || int(it.ID) >= len(ar.Tiles) {
			t.Fatalf("tile id %d out of range", it.ID)
		}
	}
	// Top tile must actually satisfy the hard clauses: verify against
	// the stored features directly.
	if len(items) > 0 && items[0].Score > 0.99 {
		b4, _ := ar.BandIndex("b4")
		feat, err := ar.Feature(b4, int(items[0].ID))
		if err != nil {
			t.Fatal(err)
		}
		if feat.Stats.Mean < 160 {
			t.Fatalf("top tile b4 mean %v contradicts full score", feat.Stats.Mean)
		}
	}
}

func TestKnowledgeTopKTilesValidation(t *testing.T) {
	e, _ := knowledgeEngine(t)
	if _, _, err := e.KnowledgeTopKTiles("s", nil, 5); err == nil {
		t.Fatal("want empty rules error")
	}
	if _, _, err := e.KnowledgeTopKTiles("s", bayes.NewRuleSet(), 5); err == nil {
		t.Fatal("want empty rules error")
	}
	if _, _, err := e.KnowledgeTopKTiles("missing", HPSTileRules(), 5); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if _, _, err := e.KnowledgeTopKTiles("s", HPSTileRules(), 0); err == nil {
		t.Fatal("want k error")
	}
}

func TestKnowledgeRulesDiscriminate(t *testing.T) {
	e, _ := knowledgeEngine(t)
	// A rule set demanding impossible values returns nothing.
	impossible := bayes.NewRuleSet().Require("b4.mean", bayes.Above{Lo: 10_000, Hi: 10_001})
	items, _, err := e.KnowledgeTopKTiles("s", impossible, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Fatalf("impossible rules matched %d tiles", len(items))
	}
	// A tautological rule set matches every tile at full grade.
	always := bayes.NewRuleSet().Require("b4.mean", bayes.Above{Lo: -1, Hi: 0})
	items, _, err = e.KnowledgeTopKTiles("s", always, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 64 {
		t.Fatalf("tautology matched %d of 64 tiles", len(items))
	}
}
