package core

import (
	"context"
	"testing"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/progressive"
	"modelir/internal/sproc"
	"modelir/internal/synth"
)

// The QueryStats accounting pins: Evaluations / Examined / Pruned /
// Truncated asserted exactly, family by family, on archives small
// enough to count by hand. Engines run Shards:1 and requests Workers:1
// so budget truncation points are deterministic.

func statsEngine(t *testing.T) *Engine {
	t.Helper()
	return NewEngineWith(Options{Shards: 1})
}

// assertStats pins the four normalized counters plus Shards and Kind.
func assertStats(t *testing.T, label string, st QueryStats, kind ModelKind, evals, examined, pruned int, truncated bool) {
	t.Helper()
	if st.Kind != kind || st.Evaluations != evals || st.Examined != examined ||
		st.Pruned != pruned || st.Truncated != truncated || st.Shards != 1 {
		t.Fatalf("%s: got {Kind:%v Evaluations:%d Examined:%d Pruned:%d Truncated:%v Shards:%d}, "+
			"want {Kind:%v Evaluations:%d Examined:%d Pruned:%d Truncated:%v Shards:1}",
			label, st.Kind, st.Evaluations, st.Examined, st.Pruned, st.Truncated, st.Shards,
			kind, evals, examined, pruned, truncated)
	}
}

// TestStatsLinearExact: K >= N with no floor disables all screening, so
// the Onion scan must touch every point exactly once.
func TestStatsLinearExact(t *testing.T) {
	e := statsEngine(t)
	pts := [][]float64{{1, 0}, {0, 1}, {2, 2}, {-1, 3}, {4, -2}}
	if err := e.AddTuples("t", pts); err != nil {
		t.Fatal(err)
	}
	m, err := linear.New([]string{"x", "y"}, []float64{1, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: "t", Query: LinearQuery{Model: m}, K: 10, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "linear full scan", res.Stats, KindLinear, len(pts), len(pts), 0, false)
	det := res.Stats.Detail.(LinearTupleStats)
	if det.ScanCost != len(pts) || det.Indexed.PointsTouched != len(pts) || det.Indexed.PointsSkippedByBudget != 0 {
		t.Fatalf("linear detail %+v", det)
	}
}

// TestStatsSceneExact: K >= W*H disables branch-and-bound pruning, so
// every pixel and every pyramid cell must be visited — for a 16×16
// scene with 3 levels that is 256 pixels, 64 level-1 cells, and 16
// root cells.
func TestStatsSceneExact(t *testing.T) {
	e := statsEngine(t)
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 9, W: 16, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 8, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("s", arch); err != nil {
		t.Fatal(err)
	}
	pm, err := linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: "s", Query: SceneQuery{Model: pm}, K: 256, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := res.Stats.Detail.(progressive.Stats)
	// The descent pops every cell at every level: 16 roots (4×4),
	// 64 level-1 cells (8×8), and 256 pixel-level cells, then scores
	// all 256 pixels.
	wantCells := 256 + 64 + 16
	assertStats(t, "scene full refine", res.Stats, KindLinear, det.Work(), 256+wantCells, 0, false)
	if det.PixelsVisited != 256 || det.CellsVisited != wantCells {
		t.Fatalf("scene detail %+v", det)
	}
}

// fsmStatsArchive is the hand-built 4-region series archive:
//
//	region 0: 5 all-rain days        → MaxDrySpell 0, prefiltered
//	region 1: 6 days with a 4-day dry spell whose 3rd+ days hit 30°C
//	region 2: 4 all-rain days        → prefiltered
//	region 3: 7 days with a 3-day hot-ending dry spell
func fsmStatsArchive() []synth.RegionSeries {
	rain := func(n int) []synth.DayWeather {
		out := make([]synth.DayWeather, n)
		for i := range out {
			out[i] = synth.DayWeather{Rain: true, RainMM: 5, TempC: 20}
		}
		return out
	}
	r1 := []synth.DayWeather{
		{TempC: 20}, {TempC: 22}, {TempC: 30}, {TempC: 28}, // 4-day dry spell, hot at day 3
		{Rain: true, RainMM: 3, TempC: 20},
		{TempC: 21},
	}
	r3 := []synth.DayWeather{
		{Rain: true, TempC: 18}, {Rain: true, TempC: 19},
		{TempC: 21}, {TempC: 23}, {TempC: 27}, // 3-day dry spell ending hot
		{Rain: true, TempC: 20}, {Rain: true, TempC: 20},
	}
	return []synth.RegionSeries{
		{Region: 0, Days: rain(5)},
		{Region: 1, Days: r1},
		{Region: 2, Days: rain(4)},
		{Region: 3, Days: r3},
	}
}

// TestStatsFSMExact pins prefilter pruning accounting: 2 regions
// pruned from metadata, 2 scanned (6+7 = 13 days evaluated).
func TestStatsFSMExact(t *testing.T) {
	e := statsEngine(t)
	if err := e.AddSeries("w", fsmStatsArchive()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: "w",
		Query:   FSMQuery{Machine: fsm.FireAnts(), Prefilter: FireAntsPrefilter},
		K:       4, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "fsm prefiltered", res.Stats, KindFiniteState, 13, 2, 2, false)
	det := res.Stats.Detail.(FSMStats)
	if det.RegionsTotal != 4 || det.RegionsPruned != 2 || det.DaysScanned != 13 {
		t.Fatalf("fsm detail %+v", det)
	}
}

// TestStatsFSMBudgetExact pins budget truncation: the meter is
// exhausted once charged work strictly exceeds the budget, so Budget 4
// against region 0's 5 days stops the single-worker scan after exactly
// one region.
func TestStatsFSMBudgetExact(t *testing.T) {
	e := statsEngine(t)
	if err := e.AddSeries("w", fsmStatsArchive()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: "w",
		Query:   FSMQuery{Machine: fsm.FireAnts()},
		K:       4, Workers: 1, Budget: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "fsm budgeted", res.Stats, KindFiniteState, 5, 1, 0, true)
}

// TestStatsFSMDistanceExact: no prefilter path exists, so every region
// is examined and every day scanned (5+6+4+7 = 22).
func TestStatsFSMDistanceExact(t *testing.T) {
	e := statsEngine(t)
	if err := e.AddSeries("w", fsmStatsArchive()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: "w",
		Query:   FSMDistanceQuery{Target: fsm.FireAnts(), Horizon: 4},
		K:       4, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "fsm distance", res.Stats, KindFiniteState, 22, 4, 0, false)
}

// geoStatsWells builds three tiny hand-made wells.
func geoStatsWells() []synth.WellLog {
	return []synth.WellLog{
		{Well: 0, Strata: []synth.Stratum{
			{Lith: synth.Shale, TopFt: 0, ThickFt: 10, GammaAPI: 100},
			{Lith: synth.Sandstone, TopFt: 12, ThickFt: 8, GammaAPI: 30},
			{Lith: synth.Siltstone, TopFt: 22, ThickFt: 5, GammaAPI: 60},
		}},
		{Well: 1, Strata: []synth.Stratum{
			{Lith: synth.Limestone, TopFt: 0, ThickFt: 20, GammaAPI: 25},
			{Lith: synth.Shale, TopFt: 21, ThickFt: 10, GammaAPI: 120},
		}},
		{Well: 2, Strata: []synth.Stratum{
			{Lith: synth.Shale, TopFt: 0, ThickFt: 6, GammaAPI: 90},
			{Lith: synth.Shale, TopFt: 7, ThickFt: 6, GammaAPI: 95},
			{Lith: synth.Sandstone, TopFt: 14, ThickFt: 9, GammaAPI: 35},
			{Lith: synth.Sandstone, TopFt: 40, ThickFt: 9, GammaAPI: 35},
		}},
	}
}

// TestStatsGeologyExact pins the aggregation: the engine's Evaluations
// must equal the sum of per-well SPROC unary+pair evaluations computed
// directly from the same evaluator, and Examined must count every well.
func TestStatsGeologyExact(t *testing.T) {
	e := statsEngine(t)
	wells := geoStatsWells()
	if err := e.AddWells("g", wells); err != nil {
		t.Fatal(err)
	}
	gq := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone},
		MaxGapFt: 10, MinGamma: 45, Method: GeoBruteForce,
	}
	wantEvals := 0
	for _, w := range wells {
		_, wst, err := sproc.BruteForceCtx(context.Background(), len(w.Strata), geologySprocQuery(w, gq), 1)
		if err != nil {
			t.Fatal(err)
		}
		wantEvals += wst.UnaryEvals + wst.PairEvals
	}
	res, err := e.Run(context.Background(), Request{Dataset: "g", Query: gq, K: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "geology brute force", res.Stats, KindKnowledge, wantEvals, len(wells), 0, false)
}

// TestStatsKnowledgeExact: a 16×16 scene tiled 8×8 has exactly 4 tiles;
// with the 3-clause HPS rule set every tile costs 3 rule evaluations.
func TestStatsKnowledgeExact(t *testing.T) {
	e := statsEngine(t)
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 9, W: 16, H: 16})
	if err != nil {
		t.Fatal(err)
	}
	arch, err := archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 8, PyramidLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("s", arch); err != nil {
		t.Fatal(err)
	}
	rules := HPSTileRules()
	res, err := e.Run(context.Background(), Request{
		Dataset: "s", Query: KnowledgeQuery{Rules: rules}, K: 4, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "knowledge tiles", res.Stats, KindKnowledge, 4*rules.Len(), 4, 0, false)

	// Budget below one tile's cost: the first tile's charge exhausts
	// the meter, so exactly one tile is scored, truncated.
	res, err = e.Run(context.Background(), Request{
		Dataset: "s", Query: KnowledgeQuery{Rules: rules}, K: 4, Workers: 1, Budget: rules.Len() - 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertStats(t, "knowledge budgeted", res.Stats, KindKnowledge, rules.Len(), 1, 0, true)
}
