// Admission control: a weighted semaphore bounding the total fan-out
// workers in flight across all concurrent requests. Without it, N
// concurrent callers each spawning a GOMAXPROCS-wide pool oversubscribe
// the scheduler N-fold; with it, contended requests degrade to narrower
// fan-outs (down to one worker) instead of stacking goroutines, and
// callers block only when the budget is fully committed. Clamping a
// request's workers is always result-safe: every query path returns
// identical items and scores for any worker count (DESIGN.md §2).

package core

import (
	"context"
	"runtime"
)

// DefaultMaxWorkers is the admission budget used when Options.MaxWorkers
// is zero: enough oversubscription to keep cores busy through the
// blocking-free scan loops, small enough that heavy concurrent traffic
// degrades width instead of exploding goroutine counts.
func DefaultMaxWorkers() int { return 4 * runtime.GOMAXPROCS(0) }

// effectiveWorkers resolves a request's fan-out width before admission:
// the requested count (0 = GOMAXPROCS) clamped to the plan's shard
// count, since workers beyond one-per-shard never get work.
func effectiveWorkers(requested, shards int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if shards >= 1 && w > shards {
		w = shards
	}
	if w < 1 {
		w = 1
	}
	return w
}

// admit reserves fan-out workers from the engine's admission budget,
// returning the (possibly clamped) width to run at and a release func.
// With admission disabled it grants the full want.
func (e *Engine) admit(ctx context.Context, want int) (int, func(), error) {
	if e.adm == nil {
		return want, func() {}, nil
	}
	got, err := e.adm.AcquireUpTo(ctx, want)
	if err != nil {
		return 0, nil, err
	}
	return got, func() { e.adm.Release(got) }, nil
}
