package core

import (
	"math"
	"testing"

	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

func TestFSMTopKParallelMatchesSerial(t *testing.T) {
	e := NewEngine()
	arch, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 12, Regions: 80, Days: 365})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("w", arch); err != nil {
		t.Fatal(err)
	}
	m := fsm.FireAnts()
	serial, serialSt, err := e.FSMTopK("w", m, 10, FireAntsPrefilter)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 100} {
		par, parSt, err := e.FSMTopKParallel("w", m, 10, FireAntsPrefilter, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d vs %d results", workers, len(par), len(serial))
		}
		for i := range serial {
			if par[i].ID != serial[i].ID || par[i].Score != serial[i].Score {
				t.Fatalf("workers=%d pos %d: %+v vs %+v", workers, i, par[i], serial[i])
			}
		}
		if parSt.RegionsPruned != serialSt.RegionsPruned ||
			parSt.DaysScanned != serialSt.DaysScanned {
			t.Fatalf("workers=%d stats diverged: %+v vs %+v", workers, parSt, serialSt)
		}
	}
	if _, _, err := e.FSMTopKParallel("missing", m, 1, nil, 2); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestGeologyTopKParallelMatchesSerial(t *testing.T) {
	e := NewEngine()
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 13, Wells: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("b", wells); err != nil {
		t.Fatal(err)
	}
	q := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
	serial, serialSt, err := e.GeologyTopK("b", q, 20, GeoPruned)
	if err != nil {
		t.Fatal(err)
	}
	par, parSt, err := e.GeologyTopKParallel("b", q, 20, GeoPruned, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("%d vs %d results", len(par), len(serial))
	}
	for i := range serial {
		if par[i].Well != serial[i].Well || math.Abs(par[i].Score-serial[i].Score) > 1e-12 {
			t.Fatalf("pos %d: %+v vs %+v", i, par[i], serial[i])
		}
	}
	if parSt.PairEvals != serialSt.PairEvals {
		t.Fatalf("stats diverged: %d vs %d pair evals", parSt.PairEvals, serialSt.PairEvals)
	}
	bad := GeologyQuery{}
	if _, _, err := e.GeologyTopKParallel("b", bad, 1, GeoDP, 2); err == nil {
		t.Fatal("want validation error")
	}
	if _, _, err := e.GeologyTopKParallel("missing", q, 1, GeoDP, 2); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if _, _, err := e.GeologyTopKParallel("b", q, 1, GeologyMethod(99), 2); err == nil {
		t.Fatal("want unknown method error")
	}
}

func TestScanTopKTuplesParallel(t *testing.T) {
	e := NewEngine()
	pts, err := synth.GaussianTuples(14, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTuples("t", pts); err != nil {
		t.Fatal(err)
	}
	coeffs := []float64{1, -2, 0.5}
	par, err := e.ScanTopKTuplesParallel("t", coeffs, 3, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the indexed path.
	m, err := linear.New([]string{"a", "b", "c"}, coeffs, 3)
	if err != nil {
		t.Fatal(err)
	}
	indexed, _, err := e.LinearTopKTuples("t", m, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range indexed {
		if par[i].ID != indexed[i].ID || math.Abs(par[i].Score-indexed[i].Score) > 1e-12 {
			t.Fatalf("pos %d: scan %+v vs indexed %+v", i, par[i], indexed[i])
		}
	}
	if _, err := e.ScanTopKTuplesParallel("missing", coeffs, 0, 1, 2); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if _, err := e.ScanTopKTuplesParallel("t", []float64{1}, 0, 1, 2); err == nil {
		t.Fatal("want dimension error")
	}
}
