// The unified query surface: "a query is a model" (the paper's central
// abstraction) made literal in the API. Every model family — linear
// over tuples, linear over rasters, finite-state over series, knowledge
// over composite objects or tiles — is a Query value executed through
// one entry point, Engine.Run(ctx, Request), returning one Result shape
// with one normalized QueryStats. RunProgressive streams monotonically
// improving top-K snapshots as the paper's screening levels complete
// (onion layers, pyramid levels, scanned shards), making progressive
// retrieval user-visible instead of a hidden implementation detail.

package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"modelir/internal/bayes"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/onion"
	"modelir/internal/parallel"
	"modelir/internal/progressive"
	"modelir/internal/qcache"
	"modelir/internal/sproc"
	"modelir/internal/topk"
)

// DefaultK is the result count used when Request.K is zero.
const DefaultK = 10

// Request describes one retrieval: which dataset, which model-query,
// and per-request execution options. The zero values of the options are
// sensible defaults (K=DefaultK, Workers=GOMAXPROCS, no budget, no
// score floor).
type Request struct {
	// Dataset names a registered archive of the kind the query expects
	// (tuples for LinearQuery, a scene for SceneQuery and
	// KnowledgeQuery, series for FSM queries, wells for GeologyQuery).
	Dataset string
	// Query is the model to retrieve with. Construct one of the
	// family-specific query types (LinearQuery, SceneQuery, FSMQuery,
	// FSMDistanceQuery, GeologyQuery, KnowledgeQuery); the interface is
	// sealed to this package.
	Query Query
	// K is the number of results wanted; 0 means DefaultK.
	K int
	// Workers bounds the goroutine pool the shard fan-out runs on;
	// 0 means GOMAXPROCS. Results are identical for any worker count.
	Workers int
	// Budget caps the work the query may spend, measured in the
	// family's evaluation unit (see QueryStats.Evaluations); 0 means
	// unlimited. A query that exhausts its budget stops early and
	// returns the exact top-K of everything evaluated so far with
	// Stats.Truncated set — a best-effort answer, not an error.
	Budget int
	// MinScore, when non-nil, is an inclusive score floor: only results
	// scoring >= *MinScore are returned, and execution may use the
	// floor to prune work early. Nil means no floor (note that 0 is a
	// meaningful floor for some families, hence the pointer).
	MinScore *float64
}

// QueryStats is the normalized work report every family returns: what a
// caller needs for observability without knowing which model family
// ran. Family-specific counters remain available through Detail.
type QueryStats struct {
	// Kind is the model family that executed.
	Kind ModelKind
	// Evaluations counts the family's primary work unit: points scored
	// (linear over tuples), term evaluations (scenes), days scanned
	// (finite-state), unary+pair grades (geology), rule evaluations
	// (knowledge tiles).
	Evaluations int
	// Examined counts candidates actually inspected (points, pixels and
	// cells, regions, wells, tiles).
	Examined int
	// Pruned counts candidates the screening machinery ruled out
	// without evaluating them (index pruning, metadata prefilters,
	// pyramid descent). Candidates left unscanned by budget exhaustion
	// are not counted — in Truncated runs, Examined + Pruned can fall
	// short of the dataset size by the budget-skipped remainder.
	// (Scene queries are the one approximation: their unvisited-pixel
	// count cannot split descent pruning from budget truncation.)
	Pruned int
	// Shards is the fan-out width the dataset was partitioned into.
	Shards int
	// Wall is the end-to-end execution time of the request.
	Wall time.Duration
	// Truncated reports that Request.Budget ran out before the scan
	// finished: Items are the exact top-K of what was evaluated, which
	// may differ from the true top-K.
	Truncated bool
	// Cache reports the result cache's involvement in this request:
	// whether it was served from cache, plus a sample of the
	// engine-wide hit/miss/eviction/invalidation counters taken as the
	// request completed. Every field except Wall and Cache is
	// bit-identical between a cache hit and the cold run that populated
	// it.
	Cache CacheInfo
	// Detail carries the family-specific stats struct
	// (LinearTupleStats, progressive.Stats, FSMStats, sproc.Stats,
	// KnowledgeStats) for callers that want the legacy counters.
	Detail any
}

// Result is the uniform response of Engine.Run: ranked items plus the
// normalized stats. Item IDs are family-specific (tuple index, y*W+x
// pixel location, region id, well id, tile index); GeologyQuery items
// carry the matched strata indices in Payload.
type Result struct {
	Items []topk.Item
	Stats QueryStats
}

// Snapshot is one progressive-delivery event from Engine.RunProgressive:
// the best top-K known so far, improving monotonically from snapshot to
// snapshot (an item set never gets worse, only refines toward the final
// answer). The last snapshot of a successful stream has Final set and
// carries the full Result contents; a failed stream ends with a
// snapshot whose Err is set.
type Snapshot struct {
	// Seq numbers snapshots from 0 in delivery order.
	Seq int
	// Level is the family-specific screening level the emitting worker
	// had reached (pyramid level still outstanding, onion layer index,
	// shard index); coarser levels emit first.
	Level int
	// Stage labels the screening mechanism that produced the event
	// ("onion layer", "pyramid level", "series shard", ...).
	Stage string
	// Items is the current best-first top-K (already MinScore-filtered).
	Items []topk.Item
	// Stats is populated on the Final snapshot only.
	Stats QueryStats
	// Final marks the terminal snapshot: Items/Stats equal what
	// Engine.Run would have returned for the same request.
	Final bool
	// Err is the terminal error, if the query failed or was cancelled.
	Err error
}

// Query is one executable model query — the paper's "query is a model"
// as a type. It is implemented by the family query types in this
// package and sealed (the plan method is unexported): external packages
// compose queries from LinearQuery, SceneQuery, FSMQuery,
// FSMDistanceQuery, GeologyQuery and KnowledgeQuery.
type Query interface {
	// Kind reports the model family.
	Kind() ModelKind
	// plan compiles the query against the engine into a single-use
	// shard fan-out. snap is nil except for RunProgressive.
	plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error)
}

// queryPlan is one compiled request: a shard fan-out Run can execute on
// its own pool and RunBatch can schedule cell-by-cell on a shared pool.
// Plans are single-use — the runner and finish closures carry the
// per-execution accounting state (budget meter, per-shard stat slots).
type queryPlan struct {
	// shards is the fan-out width (one runner call per shard).
	shards int
	// floor seeds the cross-shard screening bound (-Inf for none).
	floor float64
	// shift is the offset between the internal screening-score scale the
	// shard runners publish to the bound and the caller-visible result
	// scale (the linear family screens pre-intercept; everyone else 0).
	// RunShared uses it to translate floors exchanged across processes.
	shift float64
	// run scans one shard; see parallel.ShardRunner.
	run parallel.ShardRunner
	// finish turns the merged top-K into the caller-visible items and
	// normalized stats (score shifts, per-shard stat aggregation).
	finish func(items []topk.Item) ([]topk.Item, QueryStats, error)
}

// Run executes one request: resolve the dataset, fan the query out
// across its shards with cross-shard screening, honor ctx cancellation
// and the request's budget, and merge the exact top-K. All model
// families flow through this entry point; the per-family methods on
// Engine are deprecated wrappers around it.
//
// Serving behavior: cacheable requests (see DESIGN.md §6) are answered
// from the result cache when a live entry exists — bit-identical to a
// cold run, with only Stats.Wall and Stats.Cache reflecting the hit —
// and admission control clamps the fan-out width when the engine's
// worker budget is contended, which changes scheduling only, never
// results.
//
// Cancellation is cooperative and prompt: every family checks ctx
// inside its per-shard scan loops (per onion layer, per pyramid cell,
// per region, per well, per tile), so a cancelled or timed-out request
// stops burning CPU mid-shard and returns ctx.Err().
func (e *Engine) Run(ctx context.Context, req Request) (Result, error) {
	return e.runReq(ctx, req, nil, nil)
}

// bareCtxErr surfaces cancellation as the bare ctx.Err() the caller
// acted on, not wrapped in shard-fanout annotations.
func bareCtxErr(ctx context.Context, err error) error {
	if ce := ctx.Err(); ce != nil && errors.Is(err, ce) {
		return ce
	}
	return err
}

func (e *Engine) runReq(ctx context.Context, req Request, snap *snapshotter, sb *SharedBound) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateRequest(&req); err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	start := time.Now()

	// Result cache probe. Progressive streams bypass the cache: their
	// contract is a stream of snapshots, not one result.
	var key qcache.Key
	var gen uint64
	cacheable := false
	if snap == nil && e.cache != nil {
		key, cacheable = fingerprintRequest(req)
	}
	if cacheable {
		// The target dataset's generation is sampled before the plan
		// resolves its shard list, so an append racing this request
		// either lands before the sample (the entry is stored under —
		// and valid for — the new generation) or after it (the entry is
		// stamped stale the moment it is written). Other datasets'
		// generations are untouched, so their entries stay live.
		gen = e.generationOf(req)
		if res, ok := e.cacheGet(key, gen, start); ok {
			return res, nil
		}
	}

	p, err := req.Query.plan(ctx, e, req, snap)
	if err != nil {
		return Result{}, bareCtxErr(ctx, err)
	}
	workers, release, err := e.admit(ctx, effectiveWorkers(req.Workers, p.shards))
	if err != nil {
		return Result{}, err
	}
	defer release()
	bound := topk.NewBound()
	bound.Raise(p.floor)
	if sb != nil {
		sb.attach(bound, p.shift)
		defer sb.detach()
	}
	items, err := parallel.ShardTopKBoundCtx(ctx, p.shards, req.K, workers, bound, p.run)
	if err != nil {
		return Result{}, bareCtxErr(ctx, err)
	}
	items, st, err := p.finish(items)
	if err != nil {
		return Result{}, bareCtxErr(ctx, err)
	}
	if req.MinScore != nil {
		items = filterMinScore(items, *req.MinScore)
	}
	st.Kind = req.Query.Kind()
	// A run pruned by a foreign floor may omit locally-top-K items that
	// are hopeless only in the remote query's global merge; caching it
	// would serve a truncated answer to a future standalone request.
	if cacheable && !sb.foreignRaised() {
		e.cachePut(key, gen, items, st)
	}
	st.Wall = time.Since(start)
	st.Cache = e.cacheInfo(false)
	return Result{Items: items, Stats: st}, nil
}

// RunProgressive executes the request like Run but streams monotonically
// improving top-K snapshots as screening levels complete, ending with a
// Final snapshot equal to Run's result (or a snapshot carrying the
// terminal error). The channel is closed when the query ends; consumers
// must drain it (snapshot delivery is flow-controlled, so an abandoned
// consumer must cancel ctx to release the query's workers).
func (e *Engine) RunProgressive(ctx context.Context, req Request) (<-chan Snapshot, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := validateRequest(&req); err != nil {
		return nil, err
	}
	ch := make(chan Snapshot, 1)
	snap := &snapshotter{
		ctx:  ctx,
		h:    topk.MustHeap(req.K),
		best: make(map[int64]float64),
		ch:   ch,
		min:  req.MinScore,
	}
	go func() {
		defer close(ch)
		res, err := e.runReq(ctx, req, snap, nil)
		fin := Snapshot{Final: true}
		if err != nil {
			fin.Err = err
		} else {
			fin.Items = res.Items
			fin.Stats = res.Stats
		}
		snap.terminal(fin)
	}()
	return ch, nil
}

// validateRequest normalizes defaults and rejects malformed requests.
func validateRequest(req *Request) error {
	if req.Query == nil {
		return errors.New("core: request needs a Query")
	}
	if req.K == 0 {
		req.K = DefaultK
	}
	if req.K < 1 {
		return fmt.Errorf("core: request K %d: %w", req.K, topk.ErrBadCapacity)
	}
	if req.Budget < 0 {
		return errors.New("core: negative request Budget")
	}
	if req.Workers < 0 {
		return errors.New("core: negative request Workers")
	}
	if req.MinScore != nil && math.IsNaN(*req.MinScore) {
		return errors.New("core: NaN request MinScore")
	}
	return nil
}

func filterMinScore(items []topk.Item, min float64) []topk.Item {
	out := items[:0]
	for _, it := range items {
		if it.Score >= min {
			out = append(out, it)
		}
	}
	return out
}

// floorOf translates the request's MinScore into a screening-bound seed
// (shift adjusts for score transforms applied after scanning, like the
// linear model's intercept).
func floorOf(req Request, shift float64) float64 {
	if req.MinScore == nil {
		return math.Inf(-1)
	}
	return *req.MinScore - shift
}

// snapshotter assembles the global progressive view for RunProgressive:
// shard workers publish their partial heaps at screening-level
// boundaries, and the snapshotter merges them into one monotonically
// improving top-K, emitting a snapshot whenever the merged view
// actually improved. Delivery blocks until the consumer receives (or
// ctx is cancelled), which flow-controls the query to the consumer.
type snapshotter struct {
	ctx context.Context
	ch  chan Snapshot
	min *float64

	mu sync.Mutex
	h  *topk.Heap
	// best dedups re-published items: workers publish cumulative heap
	// contents, and an item must not enter the merged heap twice.
	best map[int64]float64
	seq  int
}

// publish merges a worker's current partial results and emits a
// snapshot if the merged top-K improved. Returns ctx.Err() when the
// consumer is gone, aborting the publishing worker.
func (s *snapshotter) publish(level int, stage string, items []topk.Item) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	improved := false
	for _, it := range items {
		if prev, ok := s.best[it.ID]; ok && prev >= it.Score {
			continue
		}
		s.best[it.ID] = it.Score
		if s.h.Offer(it) {
			improved = true
		}
	}
	if !improved {
		return nil
	}
	out := s.h.Results()
	if s.min != nil {
		out = filterMinScore(out, *s.min)
	}
	if len(out) == 0 {
		return nil
	}
	snap := Snapshot{Seq: s.seq, Level: level, Stage: stage, Items: out}
	select {
	case s.ch <- snap:
		s.seq++
		return nil
	case <-s.ctx.Done():
		return s.ctx.Err()
	}
}

// terminal delivers the final snapshot. Every stream ends with it:
// when ctx is cancelled and the one-slot buffer still holds an
// undelivered intermediate snapshot, that snapshot is evicted to make
// room — all publishers have returned by the time terminal runs, so
// the snapshotter owns the channel's send side and the non-blocking
// send after eviction cannot fail.
func (s *snapshotter) terminal(fin Snapshot) {
	s.mu.Lock()
	fin.Seq = s.seq
	s.seq++
	s.mu.Unlock()
	select {
	case s.ch <- fin:
	case <-s.ctx.Done():
		select {
		case <-s.ch:
		default:
		}
		select {
		case s.ch <- fin:
		default:
		}
	}
}

// ---- Linear models over tuple archives ----

// LinearQuery retrieves the top-K tuples maximizing a linear model over
// a tuple archive through the per-shard Onion indexes (Section 3.2).
// Item IDs index the registered tuple slice; scores include the model's
// intercept. To minimize the model, negate its coefficients.
type LinearQuery struct {
	Model *linear.Model
}

// Kind reports the linear model family.
func (LinearQuery) Kind() ModelKind { return KindLinear }

func (q LinearQuery) plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error) {
	if q.Model == nil {
		return queryPlan{}, errors.New("core: LinearQuery needs a model")
	}
	m := q.Model
	e.mu.RLock()
	ts, ok := e.tuples[req.Dataset]
	e.mu.RUnlock()
	if !ok {
		return queryPlan{}, fmt.Errorf("%w: %q", ErrUnknownDataset, req.Dataset)
	}
	meter := topk.NewMeter(req.Budget)
	// Plans fan out over the scan list — base shards plus any live
	// delta segments; a delta's Onion index builds lazily on first
	// query exactly like a base shard's.
	perShardP := onionStatsArena.get(len(ts.scan))
	perShard := *perShardP
	return queryPlan{
		shards: len(ts.scan),
		// The shared bound screens pre-intercept scores, so the
		// MinScore floor is shifted into that scale.
		floor: floorOf(req, m.Intercept),
		shift: m.Intercept,
		run: func(si int, sb *topk.Bound) ([]topk.Item, error) {
			sh := ts.scan[si]
			// First query builds this shard's index inside the fan-out we
			// already pay for; afterwards this is a sync.Once hit.
			ix, err := sh.ensureIndex(e.onionOpt)
			if err != nil {
				return nil, err
			}
			opt := onion.ScanOpts{Ctx: ctx, Bound: sb, Meter: meter}
			if snap != nil {
				opt.OnLayer = func(layer int, sofar []topk.Item) error {
					// Lift shard-local IDs and pre-intercept scores into
					// the caller-visible scale before publishing.
					for i := range sofar {
						sofar[i].ID += int64(sh.offset)
						sofar[i].Score += m.Intercept
					}
					return snap.publish(layer, "onion layer", sofar)
				}
			}
			its, ost, err := ix.Scan(m.Coeffs, req.K, opt)
			if err != nil {
				return nil, err
			}
			perShard[si] = ost
			// Shard indexes number points locally; lift IDs into the
			// global tuple index space.
			for i := range its {
				its[i].ID += int64(sh.offset)
			}
			return its, nil
		},
		finish: func(items []topk.Item) ([]topk.Item, QueryStats, error) {
			var det LinearTupleStats
			for _, s := range perShard {
				det.Indexed.LayersScanned += s.LayersScanned
				det.Indexed.PointsTouched += s.PointsTouched
				det.Indexed.PointsZonePruned += s.PointsZonePruned
				det.Indexed.BlocksZonePruned += s.BlocksZonePruned
				det.Indexed.PointsSkippedByBudget += s.PointsSkippedByBudget
			}
			onionStatsArena.put(perShardP)
			det.ScanCost = ts.rows
			// The model's intercept shifts every score identically; add
			// it so returned scores equal model values.
			if m.Intercept != 0 {
				for i := range items {
					items[i].Score += m.Intercept
				}
			}
			st := QueryStats{
				Evaluations: det.Indexed.PointsTouched,
				Examined:    det.Indexed.PointsTouched,
				Pruned:      det.ScanCost - det.Indexed.PointsTouched - det.Indexed.PointsSkippedByBudget,
				Shards:      len(ts.scan),
				Truncated:   meter.Exhausted(),
				Detail:      det,
			}
			return items, st, nil
		},
	}, nil
}

// ---- Linear models over raster archives ----

// SceneQuery retrieves the top-K locations of a progressive linear risk
// model over a raster archive by combined progressive execution
// (Section 3.1): branch-and-bound pyramid descent with sub-model
// screening at the pixels. Item IDs encode locations as y*W + x.
type SceneQuery struct {
	Model *linear.ProgressiveModel
}

// Kind reports the linear model family.
func (SceneQuery) Kind() ModelKind { return KindLinear }

func (q SceneQuery) plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error) {
	if q.Model == nil {
		return queryPlan{}, errors.New("core: SceneQuery needs a progressive model")
	}
	e.mu.RLock()
	ss, ok := e.scenes[req.Dataset]
	e.mu.RUnlock()
	if !ok {
		return queryPlan{}, fmt.Errorf("%w: %q", ErrUnknownDataset, req.Dataset)
	}
	meter := topk.NewMeter(req.Budget)
	perShardP := progStatsArena.get(len(ss.roots))
	perShard := *perShardP
	return queryPlan{
		shards: len(ss.roots),
		floor:  floorOf(req, 0),
		run: func(si int, sb *topk.Bound) ([]topk.Item, error) {
			opt := progressive.DescendOpts{Ctx: ctx, Bound: sb, Meter: meter}
			if snap != nil {
				opt.OnLevel = func(level int, sofar []topk.Item) error {
					return snap.publish(level, "pyramid level", sofar)
				}
			}
			res, err := progressive.CombinedShardOpts(q.Model, ss.scene.Pyramid(), req.K, ss.roots[si], opt)
			if err != nil {
				return nil, err
			}
			perShard[si] = res.Stats
			return res.Items, nil
		},
		finish: func(items []topk.Item) ([]topk.Item, QueryStats, error) {
			var det progressive.Stats
			for _, s := range perShard {
				det.PixelTermEvals += s.PixelTermEvals
				det.CellTermEvals += s.CellTermEvals
				det.PixelsVisited += s.PixelsVisited
				det.CellsVisited += s.CellsVisited
			}
			progStatsArena.put(perShardP)
			st := QueryStats{
				Evaluations: det.Work(),
				Examined:    det.PixelsVisited + det.CellsVisited,
				Pruned:      ss.scene.W*ss.scene.H - det.PixelsVisited,
				Shards:      len(ss.roots),
				Truncated:   meter.Exhausted(),
				Detail:      det,
			}
			return items, st, nil
		},
	}, nil
}

// ---- Finite-state models over series archives ----

// snapEveryRegions batches progressive publications for scan-shaped
// families (series regions, wells, tiles): workers publish their
// partial top-K after each batch and at shard end.
const snapEveryRegions = 16

// ctxCheckMask amortizes the per-candidate non-blocking ctx.Done()
// select to one poll every 32 candidates (i&mask == 0). A final
// ctx.Err() read before a shard returns keeps the contract that a
// context cancelled mid-scan never yields a normal result, no matter
// where between polls the cancellation landed.
const ctxCheckMask = 31

// scanPlan builds the fan-out for a scan-shaped family (series
// regions, wells, tiles) with the shared per-candidate scaffold: an
// amortized context check and a budget gate before each candidate, and
// batched progressive publication. The scan hook owns the meter: a
// family whose candidate cost is known up front (series days, rule
// count) charges the meter BEFORE scoring, so concurrent workers see
// the spend the moment the work is committed rather than after it
// completes — the overshoot window is one in-flight candidate's gate
// race, not a whole candidate's worth of invisible work per worker.
// Families whose cost is emergent (geology's DP work depends on
// pruning) charge as soon as the evaluator reports it. Single-worker
// truncation points are unchanged either way: the gate reads the meter
// before each candidate, and the previous candidate's charge is
// visible at that gate under both disciplines.
func scanPlan(ctx context.Context, req Request, snap *snapshotter,
	nShards int, stage string, meter *topk.Meter,
	shardSize func(si int) int,
	scan func(si, i int, h *topk.Heap) error,
	finish func(items []topk.Item) ([]topk.Item, QueryStats, error),
) queryPlan {
	done := ctx.Done()
	return queryPlan{
		shards: nShards,
		floor:  floorOf(req, 0),
		run: func(si int, _ *topk.Bound) ([]topk.Item, error) {
			h := topk.MustGetHeap(req.K)
			defer topk.PutHeap(h)
			n := shardSize(si)
			for i := 0; i < n; i++ {
				if i&ctxCheckMask == 0 {
					select {
					case <-done:
						return nil, ctx.Err()
					default:
					}
				}
				if meter.Exhausted() {
					break // budget exhausted: keep what this shard has
				}
				if err := scan(si, i, h); err != nil {
					return nil, err
				}
				if snap != nil && (i+1)%snapEveryRegions == 0 {
					if err := snap.publish(si, stage, h.Results()); err != nil {
						return nil, err
					}
				}
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if snap != nil {
				if err := snap.publish(si, stage, h.Results()); err != nil {
					return nil, err
				}
			}
			return h.Results(), nil
		},
		finish: finish,
	}
}

// FSMQuery ranks regions of a series archive by fsm.FlyScore under the
// machine (Section 2.2). A nil Prefilter scans every region; a sound
// prefilter skips regions whose metadata proves a zero score. Item IDs
// are region ids.
type FSMQuery struct {
	Machine   *fsm.Machine
	Prefilter FSMPrefilter
}

// Kind reports the finite-state model family.
func (FSMQuery) Kind() ModelKind { return KindFiniteState }

func (q FSMQuery) plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error) {
	if q.Machine == nil {
		return queryPlan{}, errors.New("core: FSMQuery needs a machine")
	}
	e.mu.RLock()
	ss, ok := e.series[req.Dataset]
	e.mu.RUnlock()
	if !ok {
		return queryPlan{}, fmt.Errorf("%w: %q", ErrUnknownDataset, req.Dataset)
	}
	meter := topk.NewMeter(req.Budget)
	perShardP, examinedP := fsmStatsArena.get(len(ss.scan)), intArena.get(len(ss.scan))
	perShard, examined := *perShardP, *examinedP
	return scanPlan(ctx, req, snap, len(ss.scan), "series shard", meter,
		func(si int) int { return len(ss.scan[si].regions) },
		func(si, i int, h *topk.Heap) error {
			sh := ss.scan[si]
			if q.Prefilter != nil && !q.Prefilter(sh.sums[i]) {
				perShard[si].RegionsPruned++
				return nil
			}
			// The columnar event plane replaces per-query
			// re-classification; the day count is known up front, so
			// the budget is charged before the machine runs.
			events := sh.eventsOf(i)
			meter.Charge(len(events))
			perShard[si].DaysScanned += len(events)
			examined[si]++
			score, err := fsm.FlyScore(q.Machine, events)
			if err != nil {
				return err
			}
			if score > 0 {
				h.OfferScore(int64(sh.regions[i].Region), score)
			}
			return nil
		},
		func(items []topk.Item) ([]topk.Item, QueryStats, error) {
			det := FSMStats{RegionsTotal: ss.total}
			scanned := 0
			for si, s := range perShard {
				det.RegionsPruned += s.RegionsPruned
				det.DaysScanned += s.DaysScanned
				scanned += examined[si]
			}
			fsmStatsArena.put(perShardP)
			intArena.put(examinedP)
			st := QueryStats{
				Evaluations: det.DaysScanned,
				Examined:    scanned,
				Pruned:      det.RegionsPruned,
				Shards:      len(ss.scan),
				Truncated:   meter.Exhausted(),
				Detail:      det,
			}
			return items, st, nil
		}), nil
}

// FSMDistanceQuery ranks regions by behavioral closeness between the
// target machine and the machine their data exhibits (Section 3's FSM
// similarity): scores are 1-distance over strings up to Horizon. Item
// IDs are region ids.
type FSMDistanceQuery struct {
	Target *fsm.Machine
	// Horizon bounds the string length of the exact behavioral
	// distance.
	Horizon int
}

// Kind reports the finite-state model family.
func (FSMDistanceQuery) Kind() ModelKind { return KindFiniteState }

func (q FSMDistanceQuery) plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error) {
	if q.Target == nil {
		return queryPlan{}, errors.New("core: FSMDistanceQuery needs a target machine")
	}
	e.mu.RLock()
	ss, ok := e.series[req.Dataset]
	e.mu.RUnlock()
	if !ok {
		return queryPlan{}, fmt.Errorf("%w: %q", ErrUnknownDataset, req.Dataset)
	}
	meter := topk.NewMeter(req.Budget)
	perShardP, examinedP := fsmStatsArena.get(len(ss.scan)), intArena.get(len(ss.scan))
	perShard, examined := *perShardP, *examinedP
	return scanPlan(ctx, req, snap, len(ss.scan), "series shard", meter,
		func(si int) int { return len(ss.scan[si].regions) },
		func(si, i int, h *topk.Heap) error {
			sh := ss.scan[si]
			events := sh.eventsOf(i)
			meter.Charge(len(events))
			perShard[si].DaysScanned += len(events)
			examined[si]++
			sc := fsmScratchPool.Get().(*fsm.Scratch)
			extracted, err := fsm.ExtractWith(q.Target, events, sc)
			if err != nil {
				fsmScratchPool.Put(sc)
				return err
			}
			d, err := fsm.DistanceWith(q.Target, extracted, q.Horizon, sc)
			fsmScratchPool.Put(sc)
			if err != nil {
				return err
			}
			h.OfferScore(int64(sh.regions[i].Region), 1-d)
			return nil
		},
		func(items []topk.Item) ([]topk.Item, QueryStats, error) {
			det := FSMStats{RegionsTotal: ss.total}
			scanned := 0
			for si, s := range perShard {
				det.DaysScanned += s.DaysScanned
				scanned += examined[si]
			}
			fsmStatsArena.put(perShardP)
			intArena.put(examinedP)
			st := QueryStats{
				Evaluations: det.DaysScanned,
				Examined:    scanned,
				Shards:      len(ss.scan),
				Truncated:   meter.Exhausted(),
				Detail:      det,
			}
			return items, st, nil
		}), nil
}

// ---- Knowledge models over composite objects (geology wells) ----

// Kind reports the knowledge model family.
func (GeologyQuery) Kind() ModelKind { return KindKnowledge }

func (q GeologyQuery) plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error) {
	if err := q.Validate(); err != nil {
		return queryPlan{}, err
	}
	method := q.Method
	if method == 0 {
		method = GeoDP
	}
	switch method {
	case GeoBruteForce, GeoDP, GeoPruned:
	default:
		return queryPlan{}, fmt.Errorf("core: unknown geology method %d", method)
	}
	e.mu.RLock()
	ws, ok := e.wells[req.Dataset]
	e.mu.RUnlock()
	if !ok {
		return queryPlan{}, fmt.Errorf("%w: %q", ErrUnknownDataset, req.Dataset)
	}
	meter := topk.NewMeter(req.Budget)
	perShardP, examinedP := sprocStatsArena.get(len(ws.scan)), intArena.get(len(ws.scan))
	perShard, examined := *perShardP, *examinedP
	// One columnar scanner per shard: the grade closures bind once and
	// walk the shard's flat strata planes; per well only the base
	// offset moves.
	scanners := make([]*geoShardScanner, len(ws.scan))
	for si, sh := range ws.scan {
		scanners[si] = newGeoShardScanner(sh, q)
	}
	return scanPlan(ctx, req, snap, len(ws.scan), "well shard", meter,
		func(si int) int { return len(ws.scan[si].wells) },
		func(si, i int, h *topk.Heap) error {
			g := scanners[si]
			n := g.setWell(i)
			var (
				best sproc.Match
				wst  sproc.Stats
				err  error
			)
			switch method {
			case GeoBruteForce:
				var matches []sproc.Match
				matches, wst, err = sproc.BruteForceCtx(ctx, n, g.sq, 1)
				if err == nil && len(matches) > 0 {
					best = matches[0]
				}
			case GeoDP:
				// The serving path: scratch-backed top-1 DP,
				// bit-identical to DPCtx(…, 1) at zero steady-state
				// allocations. The match aliases the scratch and is
				// copied below only if it can enter the heap.
				sc := sprocScratchPool.Get().(*sproc.Scratch)
				best, wst, err = sproc.DP1Ctx(ctx, n, g.sq, sc)
				if err != nil {
					sprocScratchPool.Put(sc)
					break
				}
				if best.Score > 0 {
					if thr, full := h.Threshold(); !full || best.Score >= thr {
						best.Items = append([]int(nil), best.Items...)
					} else {
						// A full heap strictly above this score rejects
						// it for sure; skip the copy and the offer.
						best.Score = 0
					}
				}
				sprocScratchPool.Put(sc)
			case GeoPruned:
				var matches []sproc.Match
				matches, wst, err = sproc.PrunedCtx(ctx, n, g.sq, 1)
				if err == nil && len(matches) > 0 {
					best = matches[0]
				}
			}
			if err != nil {
				return err
			}
			// The DP's work is emergent (it depends on pruning), so the
			// meter is charged as soon as the evaluator reports it.
			meter.Charge(wst.UnaryEvals + wst.PairEvals)
			perShard[si].UnaryEvals += wst.UnaryEvals
			perShard[si].PairEvals += wst.PairEvals
			perShard[si].TuplesConsidered += wst.TuplesConsidered
			examined[si]++
			if best.Score > 0 {
				h.Offer(topk.Item{
					ID:      int64(g.sh.wells[i].Well),
					Score:   best.Score,
					Payload: best.Items,
				})
			}
			return nil
		},
		func(items []topk.Item) ([]topk.Item, QueryStats, error) {
			var det sproc.Stats
			scanned := 0
			for si, s := range perShard {
				det.UnaryEvals += s.UnaryEvals
				det.PairEvals += s.PairEvals
				det.TuplesConsidered += s.TuplesConsidered
				scanned += examined[si]
			}
			sprocStatsArena.put(perShardP)
			intArena.put(examinedP)
			st := QueryStats{
				Evaluations: det.UnaryEvals + det.PairEvals,
				Examined:    scanned,
				Shards:      len(ws.scan),
				Truncated:   meter.Exhausted(),
				Detail:      det,
			}
			return items, st, nil
		}), nil
}

// ---- Knowledge models over scene tiles ----

// KnowledgeQuery ranks a scene's tiles by fuzzy rule-set score over the
// archive's feature abstraction level (Section 2.3) — no raw pixels are
// read. Item IDs are tile indices into the archive's Tiles slice.
type KnowledgeQuery struct {
	Rules *bayes.RuleSet
}

// Kind reports the knowledge model family.
func (KnowledgeQuery) Kind() ModelKind { return KindKnowledge }

func (q KnowledgeQuery) plan(ctx context.Context, e *Engine, req Request, snap *snapshotter) (queryPlan, error) {
	if q.Rules == nil || q.Rules.Len() == 0 {
		return queryPlan{}, errors.New("core: empty rule set")
	}
	e.mu.RLock()
	ss, ok := e.scenes[req.Dataset]
	e.mu.RUnlock()
	if !ok {
		return queryPlan{}, fmt.Errorf("%w: %q", ErrUnknownDataset, req.Dataset)
	}
	sc := ss.scene
	// Compile the rule set against the scene's feature-matrix columns
	// once: the per-tile scan is then a flat-row pass with no map
	// construction and no string hashing (scoring is bit-identical to
	// the map path; unknown features grade 0 either way). Weight
	// validation moves from mid-scan to plan time with it.
	comp, err := q.Rules.Compile(ss.featCols)
	if err != nil {
		return queryPlan{}, fmt.Errorf("core: %w", err)
	}
	meter := topk.NewMeter(req.Budget)
	det := &KnowledgeStats{}
	cost := q.Rules.Len()
	// The tile table is one un-sharded list; scanPlan with a single
	// shard still supplies the scan scaffold (ctx checks, budget gate,
	// batched progressive publication).
	return scanPlan(ctx, req, snap, 1, "feature tiles", meter,
		func(int) int { return len(sc.Tiles) },
		func(_, ti int, h *topk.Heap) error {
			// Rule-evaluation cost is fixed per tile: charge before
			// scoring so concurrent budget gates see committed work.
			meter.Charge(cost)
			score := comp.ScoreRow(ss.featRow(ti))
			det.TilesScored++
			det.RawSamplesAvoided += sc.Tiles[ti].Area() * sc.NumBands()
			if score > 0 {
				h.OfferScore(int64(ti), score)
			}
			return nil
		},
		func(items []topk.Item) ([]topk.Item, QueryStats, error) {
			st := QueryStats{
				Evaluations: det.TilesScored * q.Rules.Len(),
				Examined:    det.TilesScored,
				// Tile scoring has no screening stage: every tile not
				// examined was budget-skipped, never pruned. The
				// abstraction-level win is Detail's RawSamplesAvoided.
				Pruned:    0,
				Shards:    1,
				Truncated: meter.Exhausted(),
				Detail:    *det,
			}
			return items, st, nil
		}), nil
}
