// Result-cache wiring: canonical Request fingerprinting,
// generation-checked lookup, and defensive copying so cached results
// stay immutable no matter what callers do with the slices they
// receive.
//
// What is cacheable: a request whose result is a pure function of
// (dataset name, K, MinScore, query content). Three things opt a
// request out:
//
//   - Budget > 0 — truncation depends on scheduling, so two identical
//     budgeted runs may legitimately differ;
//   - an FSMQuery with a Prefilter — func values have no canonical
//     content to fingerprint;
//   - a KnowledgeQuery whose rule set uses a Membership implementation
//     the bayes package cannot serialize.
//
// Workers is deliberately absent from the fingerprint: the engine
// guarantees identical results for any worker count, so requests that
// differ only in fan-out width share a cache line.
//
// Invalidation is generation-based and PER DATASET: every set carries
// a generation counter (1 at registration, +1 per append; compaction
// leaves it alone — content is unchanged), results are stamped with
// the target dataset's generation sampled before execution, and
// qcache.Get refuses entries stamped with any other generation. So a
// write to dataset A never evicts dataset B's entries — the engine-
// wide epoch scheme this replaces evicted everything on every
// registration. Staleness safety is unchanged: the generation is
// sampled BEFORE the plan resolves the dataset's shard list, so an
// append racing the request either lands before the sample (the entry
// is stored under — and valid for — the new generation) or after it
// (the entry is stamped with the old generation and refused the
// moment the new one is probed). A stale answer is never served, no
// matter how the bump interleaves with in-flight queries.

package core

import (
	"time"

	"modelir/internal/qcache"
	"modelir/internal/topk"
)

// CacheInfo reports the result cache's involvement in one request.
type CacheInfo struct {
	// Hit is true when the result was served from the cache,
	// bit-identical to the cold run that populated it.
	Hit bool
	// Hits, Misses, Evictions and Invalidations sample the engine-wide
	// cache counters as the request completed (all zero when the cache
	// is disabled).
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64
}

// cachedResult is one stored answer. Its items and stats are never
// handed out directly: cacheGet clones on the way out exactly as
// cachePut clones on the way in.
type cachedResult struct {
	items []topk.Item
	stats QueryStats // Wall and Cache zeroed; filled per serve
}

// cloneItems deep-copies a result set far enough that no caller can
// reach cached memory: the slice itself plus the one payload type the
// engine produces (geology strata indices).
func cloneItems(items []topk.Item) []topk.Item {
	out := make([]topk.Item, len(items))
	copy(out, items)
	for i, it := range out {
		if strata, ok := it.Payload.([]int); ok {
			out[i].Payload = append([]int(nil), strata...)
		}
	}
	return out
}

// cacheGet serves a live cached result, stamping the hit's own Wall and
// cache counters onto otherwise bit-identical stats. gen is the target
// dataset's current generation; entries stamped with any other
// generation are refused (and dropped) by qcache.
func (e *Engine) cacheGet(key qcache.Key, gen uint64, start time.Time) (Result, bool) {
	v, ok := e.cache.Get(key, gen)
	if !ok {
		return Result{}, false
	}
	cr := v.(*cachedResult)
	st := cr.stats
	st.Wall = time.Since(start)
	st.Cache = e.cacheInfo(true)
	return Result{Items: cloneItems(cr.items), Stats: st}, true
}

// cachePut stores a cold result under the dataset generation observed
// before its execution began.
func (e *Engine) cachePut(key qcache.Key, gen uint64, items []topk.Item, st QueryStats) {
	st.Wall = 0
	st.Cache = CacheInfo{}
	e.cache.Put(key, gen, &cachedResult{items: cloneItems(items), stats: st})
}

// cacheInfo samples the engine-wide counters into a per-request view.
// It reads only the atomic counters (qcache.Counters), never the
// shard-locking entry count — this runs on every request completion.
func (e *Engine) cacheInfo(hit bool) CacheInfo {
	if e.cache == nil {
		return CacheInfo{Hit: hit}
	}
	s := e.cache.Counters()
	return CacheInfo{
		Hit:           hit,
		Hits:          s.Hits,
		Misses:        s.Misses,
		Evictions:     s.Evictions,
		Invalidations: s.Invalidations,
	}
}

// CacheStats samples the result cache's counters (zero when the cache
// is disabled).
func (e *Engine) CacheStats() qcache.Stats {
	if e.cache == nil {
		return qcache.Stats{}
	}
	return e.cache.Stats()
}

// Epoch reports the engine-wide content-change counter: the number of
// successful dataset registrations plus appends. It is an
// observability number (surfaced by /stats), not the cache key —
// invalidation is per dataset via generation counters (DatasetInfo.Gen
// reports those).
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// generationOf resolves the generation of the dataset a validated
// request targets: the per-dataset cache-invalidation stamp sampled
// before execution. Returns 0 for an unknown dataset — results are
// only ever stored with a live set's generation (>= 1), so a 0 probe
// can never hit, and the plan will fail the request with
// ErrUnknownDataset before anything could be stored.
func (e *Engine) generationOf(req Request) uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	switch req.Query.(type) {
	case LinearQuery:
		if ts, ok := e.tuples[req.Dataset]; ok {
			return ts.gen
		}
	case SceneQuery, KnowledgeQuery:
		if ss, ok := e.scenes[req.Dataset]; ok {
			return ss.gen
		}
	case FSMQuery, FSMDistanceQuery:
		if ss, ok := e.series[req.Dataset]; ok {
			return ss.gen
		}
	case GeologyQuery:
		if ws, ok := e.wells[req.Dataset]; ok {
			return ws.gen
		}
	}
	return 0
}

// fingerprintRequest computes the canonical cache key of a validated
// request, or ok=false when the request is not cacheable.
func fingerprintRequest(req Request) (qcache.Key, bool) {
	if req.Budget > 0 {
		return qcache.Key{}, false
	}
	f := qcache.NewFingerprint()
	f.Field("dataset").String(req.Dataset)
	f.Field("k").Int(int64(req.K))
	f.Field("minscore")
	if req.MinScore != nil {
		f.Float(*req.MinScore)
	} else {
		f.Nil()
	}
	f.Field("query")
	if !fingerprintQuery(f, req.Query) {
		return qcache.Key{}, false
	}
	return f.Key(), true
}

// fingerprintQuery appends the query's family tag and canonical model
// content. Unknown query shapes (including pointer-wrapped family
// types) conservatively bypass the cache.
func fingerprintQuery(f *qcache.Fingerprint, q Query) bool {
	switch q := q.(type) {
	case LinearQuery:
		if q.Model == nil {
			return false
		}
		f.String("linear").Bytes(q.Model.AppendCanonical(nil))
	case SceneQuery:
		if q.Model == nil {
			return false
		}
		f.String("scene").Bytes(q.Model.AppendCanonical(nil))
	case FSMQuery:
		if q.Machine == nil || q.Prefilter != nil {
			return false
		}
		f.String("fsm").Bytes(q.Machine.AppendCanonical(nil))
	case FSMDistanceQuery:
		if q.Target == nil {
			return false
		}
		f.String("fsm-distance").Bytes(q.Target.AppendCanonical(nil)).Int(int64(q.Horizon))
	case GeologyQuery:
		seq := make([]int, len(q.Sequence))
		for i, l := range q.Sequence {
			seq[i] = int(l)
		}
		method := q.Method
		if method == 0 {
			method = GeoDP // the execution default; fingerprint what runs
		}
		f.String("geology").Ints(seq).
			Float(q.MaxGapFt).Float(q.MinGamma).Float(q.GammaRampAPI).
			Int(int64(method))
	case KnowledgeQuery:
		if q.Rules == nil {
			return false
		}
		b, ok := q.Rules.AppendCanonical(nil)
		if !ok {
			return false
		}
		f.String("knowledge").Bytes(b)
	default:
		return false
	}
	return true
}
