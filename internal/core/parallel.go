package core

import (
	"fmt"

	"modelir/internal/fsm"
	"modelir/internal/parallel"
	"modelir/internal/sproc"
	"modelir/internal/topk"
)

// Worker-count overrides. Since the engine shards archives at ingest
// and every query already fans out one worker per shard, FSMTopKParallel
// and GeologyTopKParallel only pin the size of the goroutine pool the
// shards are scheduled on (0 = GOMAXPROCS); results and stats are
// identical to the plain methods for any worker count, and effective
// parallelism is bounded by the engine's ingest shard count.
// ScanTopKTuplesParallel, by contrast, partitions per *item* so its
// `workers` always controls fan-out — it is the honest multi-core
// baseline even on a Shards:1 engine.

// FSMTopKParallel is FSMTopK scheduled on `workers` goroutines.
func (e *Engine) FSMTopKParallel(dataset string, m *fsm.Machine, k int, pre FSMPrefilter, workers int) ([]topk.Item, FSMStats, error) {
	return e.fsmTopK(dataset, m, k, pre, workers)
}

// GeologyTopKParallel is GeologyTopK scheduled on `workers` goroutines.
func (e *Engine) GeologyTopKParallel(dataset string, q GeologyQuery, k int, method GeologyMethod, workers int) ([]WellMatch, sproc.Stats, error) {
	return e.geologyTopK(dataset, q, k, method, workers)
}

// ScanTopKTuplesParallel is the sequential-scan baseline sharded across
// workers: used to keep speedup comparisons honest on multi-core hosts
// (the indexed path and the baseline both get the same cores).
func (e *Engine) ScanTopKTuplesParallel(dataset string, coeffs []float64, intercept float64, k, workers int) ([]topk.Item, error) {
	e.mu.RLock()
	ts, ok := e.tuples[dataset]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	pts := ts.points
	if pts == nil {
		// A snapshot-restored engine persists only the built indexes;
		// the raw rows the scan baseline walks were never written.
		return nil, fmt.Errorf("core: %q: sequential-scan baseline unavailable on a restored engine", dataset)
	}
	if ts.deltaRows() > 0 {
		// Live delta segments carry their raw rows; walk base + deltas
		// in global row order so IDs match the indexed path.
		all := make([][]float64, 0, ts.rows)
		all = append(all, pts...)
		for _, d := range ts.deltas {
			all = append(all, d.points...)
		}
		pts = all
	}
	if dim := len(pts[0]); dim != len(coeffs) {
		return nil, fmt.Errorf("core: %d coefficients for %d-dim tuples", len(coeffs), dim)
	}
	return parallel.TopK(len(pts), k, workers, func(i int) (float64, bool, error) {
		s := intercept
		for j, c := range coeffs {
			s += c * pts[i][j]
		}
		return s, true, nil
	})
}
