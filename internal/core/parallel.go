package core

import (
	"errors"
	"fmt"
	"sync"

	"modelir/internal/fsm"
	"modelir/internal/parallel"
	"modelir/internal/sproc"
	"modelir/internal/topk"
)

// Parallel query variants. Archives at the paper's scale are trivially
// shardable along their outer dimension (regions, wells, tuples); these
// methods fan the same per-item scoring used by the serial paths across
// worker goroutines and return bit-identical result sets (the merge
// preserves the serial (score, ID) ordering — see internal/parallel).

// FSMTopKParallel is FSMTopK with regions scored across `workers`
// goroutines (0 = GOMAXPROCS). Results match FSMTopK exactly.
func (e *Engine) FSMTopKParallel(dataset string, m *fsm.Machine, k int, pre FSMPrefilter, workers int) ([]topk.Item, FSMStats, error) {
	var st FSMStats
	e.mu.Lock()
	rs, ok := e.series[dataset]
	sums := e.summary[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, st, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	st.RegionsTotal = len(rs)
	var pruned, days atomicCounter
	items, err := parallel.TopK(len(rs), k, workers, func(i int) (float64, bool, error) {
		if pre != nil && !pre(sums[i]) {
			pruned.add(1)
			return 0, false, nil
		}
		events := fsm.ClassifySeries(rs[i].Days)
		days.add(int64(len(events)))
		score, err := fsm.FlyScore(m, events)
		if err != nil {
			return 0, false, err
		}
		return score, score > 0, nil
	})
	if err != nil {
		return nil, st, err
	}
	st.RegionsPruned = int(pruned.load())
	st.DaysScanned = int(days.load())
	// parallel.TopK IDs are slice indices; map back to region ids (they
	// coincide for archives generated in order, but remaps are cheap and
	// keep the contract explicit).
	for i := range items {
		items[i].ID = int64(rs[items[i].ID].Region)
	}
	return items, st, nil
}

// GeologyTopKParallel evaluates wells concurrently. Results match
// GeologyTopK exactly; stats are aggregated across workers.
func (e *Engine) GeologyTopKParallel(dataset string, q GeologyQuery, k int, method GeologyMethod, workers int) ([]WellMatch, sproc.Stats, error) {
	var agg sproc.Stats
	if err := q.Validate(); err != nil {
		return nil, agg, err
	}
	e.mu.Lock()
	ws, ok := e.wells[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, agg, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	type wellRes struct {
		score  float64
		strata []int
		stats  sproc.Stats
		hit    bool
	}
	results := make([]wellRes, len(ws))
	err := parallel.ForEach(len(ws), workers, func(wi int) error {
		sq := geologySprocQuery(ws[wi], q)
		var (
			matches []sproc.Match
			st      sproc.Stats
			err     error
		)
		switch method {
		case GeoBruteForce:
			matches, st, err = sproc.BruteForce(len(ws[wi].Strata), sq, 1)
		case GeoDP:
			matches, st, err = sproc.DP(len(ws[wi].Strata), sq, 1)
		case GeoPruned:
			matches, st, err = sproc.Pruned(len(ws[wi].Strata), sq, 1)
		default:
			return fmt.Errorf("core: unknown geology method %d", method)
		}
		if err != nil {
			return err
		}
		r := wellRes{stats: st}
		if len(matches) > 0 && matches[0].Score > 0 {
			r.score = matches[0].Score
			r.strata = matches[0].Items
			r.hit = true
		}
		results[wi] = r
		return nil
	})
	if err != nil {
		return nil, agg, err
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, agg, err
	}
	for wi, r := range results {
		agg.UnaryEvals += r.stats.UnaryEvals
		agg.PairEvals += r.stats.PairEvals
		agg.TuplesConsidered += r.stats.TuplesConsidered
		if r.hit {
			h.Offer(topk.Item{ID: int64(ws[wi].Well), Score: r.score, Payload: r.strata})
		}
	}
	var out []WellMatch
	for _, it := range h.Results() {
		strata, ok := it.Payload.([]int)
		if !ok {
			return nil, agg, errors.New("core: internal payload corruption")
		}
		out = append(out, WellMatch{Well: int(it.ID), Score: it.Score, Strata: strata})
	}
	return out, agg, nil
}

// ScanTopKTuplesParallel is the sequential-scan baseline sharded across
// workers: used to keep speedup comparisons honest on multi-core hosts
// (the indexed path and the baseline both get the same cores).
func (e *Engine) ScanTopKTuplesParallel(dataset string, coeffs []float64, intercept float64, k, workers int) ([]topk.Item, error) {
	e.mu.Lock()
	pts, ok := e.tuples[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	if len(pts[0]) != len(coeffs) {
		return nil, fmt.Errorf("core: %d coefficients for %d-dim tuples", len(coeffs), len(pts[0]))
	}
	items, err := parallel.TopK(len(pts), k, workers, func(i int) (float64, bool, error) {
		s := intercept
		for j, c := range coeffs {
			s += c * pts[i][j]
		}
		return s, true, nil
	})
	if err != nil {
		return nil, err
	}
	return items, nil
}

// atomicCounter is a tiny contention-tolerant counter for stats.
type atomicCounter struct {
	mu sync.Mutex
	v  int64
}

func (c *atomicCounter) add(n int64) {
	c.mu.Lock()
	c.v += n
	c.mu.Unlock()
}

func (c *atomicCounter) load() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}
