package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"modelir/internal/bayes"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/qcache"
)

// TestCacheHitMatchesMiss pins the acceptance criterion: a cache hit
// returns items, scores, payloads, and stats bit-identical (modulo
// Wall and the Cache sample) to the cold run that populated it, across
// all five query families and shard counts 1, 4 and 7.
func TestCacheHitMatchesMiss(t *testing.T) {
	a := buildArchives(t)
	lm := testLinearModel(t)
	ctx := context.Background()
	for _, shards := range []int{1, 4, 7} {
		e := engineWithArchives(t, shards, a)
		for i, req := range batchRequests(a, lm) {
			label := fmt.Sprintf("shards=%d req=%d (%T)", shards, i, req.Query)
			cold, err := e.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if cold.Stats.Cache.Hit {
				t.Fatalf("%s: first run reported a cache hit", label)
			}
			hit, err := e.Run(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if !hit.Stats.Cache.Hit {
				t.Fatalf("%s: repeat run missed the cache", label)
			}
			resultsEqual(t, label, hit, cold)

			// Cached memory must be unreachable from either result: a
			// caller scribbling over its items cannot poison later hits.
			if len(hit.Items) > 0 {
				hit.Items[0].Score = -99999
				again, err := e.Run(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				hit.Items[0] = again.Items[0]
				resultsEqual(t, label+" after scribble", again, cold)
			}
		}
	}
}

// TestCacheGenerationInvalidation is the deterministic stale-entry
// pin for per-dataset invalidation: an append to the queried dataset
// kills its cached entry unserved, while registrations and appends to
// OTHER datasets leave it alone.
func TestCacheGenerationInvalidation(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	ctx := context.Background()
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}

	if _, err := e.Run(ctx, req); err != nil {
		t.Fatal(err)
	}
	epoch := e.Epoch()
	if epoch != 4 {
		t.Fatalf("epoch after 4 registrations = %d", epoch)
	}
	// Warm entry serves.
	warm, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Stats.Cache.Hit {
		t.Fatal("warm entry did not serve")
	}

	// A registration elsewhere bumps the engine epoch but NOT gauss's
	// generation: the entry must keep serving.
	if err := e.AddTuples("unrelated", [][]float64{{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != epoch+1 {
		t.Fatalf("epoch not bumped: %d", e.Epoch())
	}
	after, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Stats.Cache.Hit {
		t.Fatal("unrelated registration evicted gauss's entry")
	}
	// An append to another dataset likewise leaves gauss alone.
	if err := e.AppendTuples("unrelated", [][]float64{{4, 5, 6}}); err != nil {
		t.Fatal(err)
	}
	after, err = e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !after.Stats.Cache.Hit {
		t.Fatal("append to another dataset evicted gauss's entry")
	}

	// An append to gauss itself bumps its generation; the entry must
	// die unserved and the recompute must see the delta segment.
	row := make([]float64, len(a.pts[0]))
	if err := e.AppendTuples("gauss", [][]float64{row}); err != nil {
		t.Fatal(err)
	}
	stale, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Stats.Cache.Hit {
		t.Fatal("stale entry served after append to queried dataset")
	}
	if stale.Stats.Cache.Invalidations == 0 {
		t.Fatal("stale entry dropped without counting an invalidation")
	}
	if stale.Stats.Shards != 5 {
		t.Fatalf("post-append fan-out = %d segments, want 4 base + 1 delta", stale.Stats.Shards)
	}
	// And the recompute re-populates the cache under the new generation.
	again, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Stats.Cache.Hit {
		t.Fatal("recomputed entry did not re-cache")
	}
	resultsEqual(t, "re-cache under new generation", again, stale)
}

// TestFingerprintSemantics pins which requests share a cache line and
// which never enter the cache at all.
func TestFingerprintSemantics(t *testing.T) {
	lm := testLinearModel(t)
	base := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}
	if err := validateRequest(&base); err != nil {
		t.Fatal(err)
	}
	baseKey, ok := fingerprintRequest(base)
	if !ok {
		t.Fatal("plain linear request not cacheable")
	}

	// Workers changes scheduling only — it must share the cache line.
	workers := base
	workers.Workers = 7
	if k, ok := fingerprintRequest(workers); !ok || k != baseKey {
		t.Fatal("Workers changed the fingerprint")
	}

	// Distinct semantics, distinct keys.
	distinct := []Request{
		{Dataset: "other", Query: LinearQuery{Model: lm}, K: 5},
		{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 6},
	}
	min := 0.0
	withMin := base
	withMin.MinScore = &min
	distinct = append(distinct, withMin)
	m2, err := modelWithCoeffs(t, []float64{1, -0.5, 2.001}, 3)
	if err != nil {
		t.Fatal(err)
	}
	distinct = append(distinct, Request{Dataset: "gauss", Query: LinearQuery{Model: m2}, K: 5})
	seen := map[string]int{string(baseKey[:]): -1}
	for i := range distinct {
		if err := validateRequest(&distinct[i]); err != nil {
			t.Fatal(err)
		}
		k, ok := fingerprintRequest(distinct[i])
		if !ok {
			t.Fatalf("variant %d not cacheable", i)
		}
		if j, dup := seen[string(k[:])]; dup {
			t.Fatalf("variants %d and %d collide", i, j)
		}
		seen[string(k[:])] = i
	}

	// Uncacheable shapes: scheduling-dependent or unfingerprintable.
	budget := base
	budget.Budget = 100
	if _, ok := fingerprintRequest(budget); ok {
		t.Fatal("budgeted request fingerprinted (truncation is scheduling-dependent)")
	}
	pre := Request{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts(), Prefilter: FireAntsPrefilter}, K: 5}
	if err := validateRequest(&pre); err != nil {
		t.Fatal(err)
	}
	if _, ok := fingerprintRequest(pre); ok {
		t.Fatal("prefiltered FSM request fingerprinted (func values have no content)")
	}
	custom := Request{Dataset: "hps", Query: KnowledgeQuery{Rules: customMembershipRules()}, K: 5}
	if err := validateRequest(&custom); err != nil {
		t.Fatal(err)
	}
	if _, ok := fingerprintRequest(custom); ok {
		t.Fatal("unknown membership fingerprinted")
	}

	// Method zero normalizes to GeoDP: both must share one cache line.
	g0 := Request{Dataset: "basin", Query: testGeoQuery(), K: 5}
	gq := testGeoQuery()
	gq.Method = GeoDP
	gDP := Request{Dataset: "basin", Query: gq, K: 5}
	if err := validateRequest(&g0); err != nil {
		t.Fatal(err)
	}
	if err := validateRequest(&gDP); err != nil {
		t.Fatal(err)
	}
	k0, ok0 := fingerprintRequest(g0)
	kDP, okDP := fingerprintRequest(gDP)
	if !ok0 || !okDP || k0 != kDP {
		t.Fatal("geology Method zero and GeoDP fingerprint apart")
	}

	// FSM machine and distance queries over the same machine must not
	// collide with each other.
	fq := Request{Dataset: "weather", Query: FSMQuery{Machine: fsm.FireAnts()}, K: 5}
	dq := Request{Dataset: "weather", Query: FSMDistanceQuery{Target: fsm.FireAnts(), Horizon: 0}, K: 5}
	if err := validateRequest(&fq); err != nil {
		t.Fatal(err)
	}
	if err := validateRequest(&dq); err != nil {
		t.Fatal(err)
	}
	fk, _ := fingerprintRequest(fq)
	dk, _ := fingerprintRequest(dq)
	if fk == dk {
		t.Fatal("FSM and FSM-distance queries collide")
	}
}

// TestCacheDisabled pins Options.CacheEntries < 0: no serving, no
// counters, results unchanged.
func TestCacheDisabled(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchivesOpts(t, Options{Shards: 4, CacheEntries: -1}, a)
	lm := testLinearModel(t)
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}
	ctx := context.Background()
	r1, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.Cache.Hit || r2.Stats.Cache.Hit {
		t.Fatal("disabled cache served a hit")
	}
	if st := e.CacheStats(); st != (qcache.Stats{}) {
		t.Fatalf("disabled cache counted: %+v", st)
	}
	resultsEqual(t, "cacheless repeat", r2, r1)
}

// TestCacheInvalidationStress is the race suite: concurrent Register +
// RunBatch + Run traffic with continuous epoch invalidation, run under
// -race in CI. Correctness pin: every served linear result equals the
// immutable dataset's true answer, no matter how registrations
// interleave.
func TestCacheInvalidationStress(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm := testLinearModel(t)
	ctx := context.Background()

	want, err := e.Run(ctx, Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	machine := fsm.FireAnts()
	const writers, readers, iters = 2, 6, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				name := fmt.Sprintf("stress-%d-%d", w, i)
				if err := e.AddTuples(name, [][]float64{{float64(i), 1, 2}}); err != nil {
					t.Errorf("register %s: %v", name, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			reqs := []Request{
				{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5},
				{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 5}, // duplicate: dedup under fire
				{Dataset: "weather", Query: FSMQuery{Machine: machine}, K: 5},
			}
			for i := 0; i < iters; i++ {
				if r%2 == 0 {
					batch, err := e.RunBatch(ctx, reqs)
					if err != nil {
						t.Errorf("reader %d batch: %v", r, err)
						return
					}
					for bi := 0; bi < 2; bi++ {
						if batch[bi].Err != nil {
							t.Errorf("reader %d slot %d: %v", r, bi, batch[bi].Err)
							return
						}
						for j, it := range batch[bi].Result.Items {
							if it != want.Items[j] {
								t.Errorf("reader %d slot %d item %d drifted: %+v vs %+v", r, bi, j, it, want.Items[j])
								return
							}
						}
					}
				} else {
					res, err := e.Run(ctx, reqs[0])
					if err != nil {
						t.Errorf("reader %d run: %v", r, err)
						return
					}
					for j, it := range res.Items {
						if it != want.Items[j] {
							t.Errorf("reader %d item %d drifted: %+v vs %+v", r, j, it, want.Items[j])
							return
						}
					}
				}
			}
		}(r)
	}
	wg.Wait()
	if e.Epoch() != 4+writers*iters {
		t.Fatalf("epoch %d after %d registrations", e.Epoch(), 4+writers*iters)
	}
}

// TestAdmissionClampKeepsResults pins that an engine whose admission
// budget forces every request down to one worker still returns results
// identical to an unconstrained engine, and that heavy concurrent
// traffic through a tiny budget neither deadlocks nor leaks units.
func TestAdmissionClampKeepsResults(t *testing.T) {
	a := buildArchives(t)
	wide := engineWithArchivesOpts(t, Options{Shards: 4, CacheEntries: -1, MaxWorkers: -1}, a)
	tight := engineWithArchivesOpts(t, Options{Shards: 4, CacheEntries: -1, MaxWorkers: 1}, a)
	lm := testLinearModel(t)
	ctx := context.Background()
	req := Request{Dataset: "gauss", Query: LinearQuery{Model: lm}, K: 8, Workers: 4}
	want, err := wide.Run(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	const concurrent = 8
	var wg sync.WaitGroup
	for g := 0; g < concurrent; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := tight.Run(ctx, req)
				if err != nil {
					t.Error(err)
					return
				}
				for j := range want.Items {
					if res.Items[j] != want.Items[j] {
						t.Errorf("clamped result drifted at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// The budget must be fully returned: a full-width acquire succeeds.
	got, release, err := tight.admit(ctx, 1)
	if err != nil || got != 1 {
		t.Fatalf("post-traffic admit: %d, %v", got, err)
	}
	release()
}

// modelWithCoeffs builds a linear model for fingerprint variants.
func modelWithCoeffs(t *testing.T, coeffs []float64, intercept float64) (*linear.Model, error) {
	t.Helper()
	return linear.New([]string{"a", "b", "c"}, coeffs, intercept)
}

// customMembership is a Membership the bayes package cannot serialize,
// making any rule set that uses it uncacheable.
type customMembership struct{}

func (customMembership) Grade(float64) float64 { return 1 }

func customMembershipRules() *bayes.RuleSet {
	return bayes.NewRuleSet().Require("b4.mean", customMembership{})
}
