// Package core is the model-based information retrieval engine — the
// paper's primary contribution (Section 3). It unifies the three model
// families of Section 2 behind one retrieval surface:
//
//   - linear models over tuple archives   → Onion index [11];
//   - linear models over raster archives  → progressive model execution
//     on progressive data representations (Section 3.1);
//   - finite-state models over series     → metadata-pruned DFA runs
//     with FSM-distance ranking (Section 2.2);
//   - knowledge models over composite     → SPROC dynamic-programming
//     objects (well logs, …)                pruning [15,16].
//
// The engine owns the archives and caches the model-specific indexes, so
// repeated queries amortize index construction — the paper's premise
// that "indexing techniques specialized for the model" pay off at
// archive scale.
//
// Archives are sharded at ingest (Options.Shards partitions, default
// GOMAXPROCS) and every query family fans out one worker per shard,
// merging per-shard top-K heaps through the shared atomic screening
// bound in parallel.ShardTopK. Sharding changes wall-clock time only:
// results are identical to a single-shard scan (see DESIGN.md §2).
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/onion"
	"modelir/internal/parallel"
	"modelir/internal/progressive"
	"modelir/internal/qcache"
	"modelir/internal/sproc"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// ModelKind enumerates the paper's model families.
type ModelKind int

// Model families (Section 2).
const (
	KindLinear ModelKind = iota + 1
	KindFiniteState
	KindKnowledge
)

// String names the model kind.
func (k ModelKind) String() string {
	switch k {
	case KindLinear:
		return "linear"
	case KindFiniteState:
		return "finite-state"
	case KindKnowledge:
		return "knowledge"
	default:
		return "unknown"
	}
}

// Options tunes engine construction.
type Options struct {
	// Shards is the number of partitions each dataset is split into at
	// ingest; every query fans out one worker per shard. 0 means
	// GOMAXPROCS. 1 reproduces the sequential engine exactly.
	Shards int
	// Onion tunes the per-shard Onion indexes built for tuple archives.
	Onion onion.Options
	// CacheEntries caps the result cache (see DESIGN.md §6): 0 means
	// qcache.DefaultEntries, negative disables caching entirely.
	CacheEntries int
	// MaxWorkers is the admission-control budget: the total fan-out
	// workers allowed in flight across all concurrent requests. 0 means
	// DefaultMaxWorkers(); negative disables admission control (every
	// request gets the width it asked for, as in the pre-serving
	// engine).
	MaxWorkers int
}

// Engine is the retrieval front end. Registration, appends and queries
// may be interleaved freely from any number of goroutines: the dataset
// tables are guarded by an RWMutex, and each registered set value is
// immutable — appends swap in a new set value sharing the base shards
// plus one more delta segment — so the query hot path runs lock-free
// over a consistent shard list. The serving layer rides on top: a
// result cache keyed by canonical request fingerprints (invalidated
// per dataset by generation counters) and a weighted admission
// semaphore bounding total fan-out workers.
type Engine struct {
	shards   int
	onionOpt onion.Options

	// epoch counts successful content changes (registrations and
	// appends) engine-wide — an observability counter, no longer the
	// cache-invalidation key (per-dataset generations are; cache.go).
	epoch atomic.Uint64
	// cache is the result cache (nil = disabled).
	cache *qcache.Cache
	// adm is the admission semaphore (nil = unbounded).
	adm *parallel.Weighted

	mu     sync.RWMutex
	tuples map[string]*tupleSet
	scenes map[string]*sceneSet
	series map[string]*seriesSet
	wells  map[string]*wellSet
	// pending reserves names whose registration is still building its
	// sharded set outside the lock: invisible to queries and snapshots,
	// but taken for duplicate-registration purposes, so a concurrent
	// duplicate fails fast instead of paying a full build and
	// discarding it at the map-insert check.
	pending map[dsName]struct{}
	// compacting marks datasets with a background compaction in
	// flight (one per dataset at a time; see ingest.go).
	compacting map[dsName]bool
	// compactWG tracks background compactor goroutines so Close can
	// wait them out.
	compactWG sync.WaitGroup

	// closers release resources a snapshot restore attached to the
	// engine (mmap'd segment files in Map mode); see Close.
	closers []func() error
}

// dsKind discriminates the per-kind dataset namespaces (names are
// scoped per kind, as in the seed).
type dsKind uint8

const (
	dsTuples dsKind = iota
	dsScenes
	dsSeries
	dsWells
)

// dsName keys per-dataset bookkeeping (reservations, compaction).
type dsName struct {
	kind dsKind
	name string
}

// NewEngine returns an empty engine with default options.
func NewEngine() *Engine { return NewEngineWith(Options{}) }

// NewEngineWith returns an empty engine with the given options.
func NewEngineWith(opt Options) *Engine {
	shards := opt.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	e := &Engine{
		shards:     shards,
		onionOpt:   opt.Onion,
		tuples:     make(map[string]*tupleSet),
		scenes:     make(map[string]*sceneSet),
		series:     make(map[string]*seriesSet),
		wells:      make(map[string]*wellSet),
		pending:    make(map[dsName]struct{}),
		compacting: make(map[dsName]bool),
	}
	if opt.CacheEntries >= 0 {
		e.cache = qcache.New(qcache.Options{Entries: opt.CacheEntries})
	}
	if opt.MaxWorkers >= 0 {
		limit := opt.MaxWorkers
		if limit == 0 {
			limit = DefaultMaxWorkers()
		}
		w, err := parallel.NewWeighted(limit)
		if err != nil {
			// limit >= 1 by construction.
			panic(err)
		}
		e.adm = w
	}
	return e
}

// NumShards reports how many partitions each dataset is split into.
func (e *Engine) NumShards() int { return e.shards }

// Registration errors.
var (
	ErrDuplicateDataset = errors.New("core: dataset name already registered")
	ErrUnknownDataset   = errors.New("core: unknown dataset")
)

// takenLocked reports whether name is registered under kind. Caller
// holds e.mu (either mode).
func (e *Engine) takenLocked(k dsKind, name string) bool {
	switch k {
	case dsTuples:
		_, ok := e.tuples[name]
		return ok
	case dsScenes:
		_, ok := e.scenes[name]
		return ok
	case dsSeries:
		_, ok := e.series[name]
		return ok
	default:
		_, ok := e.wells[name]
		return ok
	}
}

// reserve claims a dataset name before its sharded set is built, so
// the (possibly expensive) build runs outside the engine lock exactly
// once: a concurrent duplicate registration fails here — through the
// one ErrDuplicateDataset path — instead of building a full set and
// discarding it at the map-insert check. The reservation is invisible
// to queries and snapshots (they read only the kind tables).
func (e *Engine) reserve(k dsKind, name string) error {
	key := dsName{k, name}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, building := e.pending[key]; building || e.takenLocked(k, name) {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	e.pending[key] = struct{}{}
	return nil
}

// commit installs a built set under its reservation and publishes the
// content change (engine epoch; the set carries its own generation).
func (e *Engine) commit(k dsKind, name string, install func()) {
	e.mu.Lock()
	delete(e.pending, dsName{k, name})
	install()
	e.epoch.Add(1)
	e.mu.Unlock()
}

// AddTuples registers a tuple archive (rows of attribute vectors),
// partitioning it into the engine's shard count. The rows are not
// copied; the caller must not mutate them afterwards.
func (e *Engine) AddTuples(name string, points [][]float64) error {
	if len(points) == 0 {
		return errors.New("core: empty tuple set")
	}
	if err := e.reserve(dsTuples, name); err != nil {
		return err
	}
	ts := newTupleSet(points, e.shards)
	e.commit(dsTuples, name, func() { e.tuples[name] = ts })
	return nil
}

// AddScene registers a raster archive, partitioning its coarsest
// pyramid level into per-shard root-cell territories.
func (e *Engine) AddScene(name string, sc *archive.Scene) error {
	if sc == nil {
		return errors.New("core: nil scene")
	}
	if err := validateSceneFeatures(sc); err != nil {
		return err
	}
	if err := e.reserve(dsScenes, name); err != nil {
		return err
	}
	ss := newSceneSet(sc, e.shards)
	e.commit(dsScenes, name, func() { e.scenes[name] = ss })
	return nil
}

// AddSeries registers a weather/event series archive, sharded, with the
// metadata-level summaries used for pruning precomputed per shard.
func (e *Engine) AddSeries(name string, rs []synth.RegionSeries) error {
	if len(rs) == 0 {
		return errors.New("core: empty series archive")
	}
	if err := e.reserve(dsSeries, name); err != nil {
		return err
	}
	ss := newSeriesSet(rs, e.shards)
	e.commit(dsSeries, name, func() { e.series[name] = ss })
	return nil
}

// AddWells registers a well-log archive, sharded.
func (e *Engine) AddWells(name string, ws []synth.WellLog) error {
	if len(ws) == 0 {
		return errors.New("core: empty well archive")
	}
	if err := e.reserve(dsWells, name); err != nil {
		return err
	}
	s := newWellSet(ws, e.shards)
	e.commit(dsWells, name, func() { e.wells[name] = s })
	return nil
}

// Scene returns a registered raster archive.
func (e *Engine) Scene(name string) (*archive.Scene, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	ss, ok := e.scenes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return ss.scene, nil
}

// LinearTupleStats reports the work of a tuple-archive linear query.
type LinearTupleStats struct {
	Indexed onion.Stats
	// ScanCost is the points a sequential scan would touch (the
	// paper's baseline denominator).
	ScanCost int
}

// legacyK rejects result counts Run's K-defaulting would otherwise
// mask, preserving the deprecated wrappers' k >= 1 contract.
func legacyK(k int) error {
	if k < 1 {
		return fmt.Errorf("core: k %d: %w", k, topk.ErrBadCapacity)
	}
	return nil
}

// LinearTopKTuples retrieves the top-K tuples maximizing the model over
// a registered tuple archive. See LinearQuery for the execution notes.
//
// Deprecated: use Run with a LinearQuery; this wrapper exists for
// callers that predate the unified request API and adds no behavior.
func (e *Engine) LinearTopKTuples(dataset string, m *linear.Model, k int) ([]topk.Item, LinearTupleStats, error) {
	var st LinearTupleStats
	if err := legacyK(k); err != nil {
		return nil, st, err
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: dataset,
		Query:   LinearQuery{Model: m},
		K:       k,
	})
	if err != nil {
		return nil, st, err
	}
	st, _ = res.Stats.Detail.(LinearTupleStats)
	return res.Items, st, nil
}

// SceneTopK retrieves the top-K locations of a linear risk model over a
// registered raster archive. See SceneQuery for the execution notes.
//
// Deprecated: use Run with a SceneQuery; this wrapper exists for
// callers that predate the unified request API and adds no behavior.
func (e *Engine) SceneTopK(dataset string, pm *linear.ProgressiveModel, k int) ([]topk.Item, progressive.Stats, error) {
	if err := legacyK(k); err != nil {
		return nil, progressive.Stats{}, err
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: dataset,
		Query:   SceneQuery{Model: pm},
		K:       k,
	})
	if err != nil {
		return nil, progressive.Stats{}, err
	}
	st, _ := res.Stats.Detail.(progressive.Stats)
	return res.Items, st, nil
}

// FSMStats reports finite-state retrieval work.
type FSMStats struct {
	RegionsTotal  int
	RegionsPruned int
	DaysScanned   int
}

// FSMPrefilter decides, from metadata alone, whether a region can
// possibly satisfy the machine. Returning false skips the full scan.
type FSMPrefilter func(synth.DrySpellStats) bool

// FireAntsPrefilter is the sound metadata filter for the Fig. 1 machine:
// flying needs a >= 3-day dry spell containing a hot (>= 25°C) day at
// position >= 3.
func FireAntsPrefilter(s synth.DrySpellStats) bool {
	return s.MaxDrySpell >= 3 && s.MaxTempAfterDry3 >= fsm.FlyTempC
}

// FSMTopK ranks regions of a series archive by fsm.FlyScore under the
// given machine. See FSMQuery for the execution notes.
//
// Deprecated: use Run with an FSMQuery; this wrapper exists for
// callers that predate the unified request API and adds no behavior.
func (e *Engine) FSMTopK(dataset string, m *fsm.Machine, k int, pre FSMPrefilter) ([]topk.Item, FSMStats, error) {
	return e.fsmTopK(dataset, m, k, pre, 0)
}

func (e *Engine) fsmTopK(dataset string, m *fsm.Machine, k int, pre FSMPrefilter, workers int) ([]topk.Item, FSMStats, error) {
	var st FSMStats
	if err := legacyK(k); err != nil {
		return nil, st, err
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: dataset,
		Query:   FSMQuery{Machine: m, Prefilter: pre},
		K:       k,
		Workers: workers,
	})
	if err != nil {
		return nil, st, err
	}
	st, _ = res.Stats.Detail.(FSMStats)
	return res.Items, st, nil
}

// FSMDistanceRank ranks regions by how closely the machine their data
// exhibits matches the target machine. See FSMDistanceQuery for the
// execution notes.
//
// Deprecated: use Run with an FSMDistanceQuery; this wrapper exists for
// callers that predate the unified request API and adds no behavior.
func (e *Engine) FSMDistanceRank(dataset string, target *fsm.Machine, k, horizon int) ([]topk.Item, error) {
	if err := legacyK(k); err != nil {
		return nil, err
	}
	res, err := e.Run(context.Background(), Request{
		Dataset: dataset,
		Query:   FSMDistanceQuery{Target: target, Horizon: horizon},
		K:       k,
	})
	if err != nil {
		return nil, err
	}
	return res.Items, nil
}

// GeologyQuery is the Fig. 4 knowledge model: an ordered lithology
// sequence with adjacency and gamma-ray constraints, retrieved over a
// well archive with the chosen SPROC evaluator. It implements Query
// directly (item Payloads carry the matched strata indices).
type GeologyQuery struct {
	// Sequence is the top-down lithology pattern (e.g. shale, sandstone,
	// siltstone).
	Sequence []synth.Lithology
	// MaxGapFt bounds the gap between consecutive strata ("adjacent
	// < 10 ft" in Fig. 4).
	MaxGapFt float64
	// MinGamma is the gamma-ray floor ("higher than 45").
	MinGamma float64
	// GammaRampAPI softens the gamma threshold: grades ramp from 0 at
	// MinGamma-GammaRamp to 1 at MinGamma+GammaRamp. Zero = crisp.
	GammaRampAPI float64
	// Method selects the SPROC evaluator; zero means GeoDP.
	Method GeologyMethod
}

// Validate checks the query.
func (q GeologyQuery) Validate() error {
	if len(q.Sequence) == 0 {
		return errors.New("core: empty lithology sequence")
	}
	if q.MaxGapFt < 0 {
		return errors.New("core: negative adjacency gap")
	}
	return nil
}

// WellMatch is one retrieved well.
type WellMatch struct {
	Well  int
	Score float64
	// Strata are the matched layer indices, one per query slot.
	Strata []int
}

// GeologyMethod selects the SPROC evaluator.
type GeologyMethod int

// Evaluator choices for GeologyTopK.
const (
	GeoBruteForce GeologyMethod = iota + 1
	GeoDP
	GeoPruned
)

// GeologyTopK retrieves the top-K wells whose strata best satisfy the
// knowledge model. See GeologyQuery for the execution notes.
//
// Deprecated: use Run with a GeologyQuery (set its Method field); this
// wrapper exists for callers that predate the unified request API and
// adds no behavior beyond converting items to WellMatch values.
func (e *Engine) GeologyTopK(dataset string, q GeologyQuery, k int, method GeologyMethod) ([]WellMatch, sproc.Stats, error) {
	return e.geologyTopK(dataset, q, k, method, 0)
}

func (e *Engine) geologyTopK(dataset string, q GeologyQuery, k int, method GeologyMethod, workers int) ([]WellMatch, sproc.Stats, error) {
	var agg sproc.Stats
	if err := legacyK(k); err != nil {
		return nil, agg, err
	}
	// The legacy signature takes the method positionally and never
	// accepted zero; only the unified path defaults it to GeoDP.
	switch method {
	case GeoBruteForce, GeoDP, GeoPruned:
	default:
		return nil, agg, fmt.Errorf("core: unknown geology method %d", method)
	}
	q.Method = method
	res, err := e.Run(context.Background(), Request{
		Dataset: dataset,
		Query:   q,
		K:       k,
		Workers: workers,
	})
	if err != nil {
		return nil, agg, err
	}
	agg, _ = res.Stats.Detail.(sproc.Stats)
	out, err := WellMatches(res.Items)
	if err != nil {
		return nil, agg, err
	}
	return out, agg, nil
}

// WellMatches converts GeologyQuery result items (well IDs with strata
// payloads) into WellMatch values.
func WellMatches(items []topk.Item) ([]WellMatch, error) {
	var out []WellMatch
	for _, it := range items {
		strata, ok := it.Payload.([]int)
		if !ok {
			return nil, errors.New("core: geology item without strata payload")
		}
		out = append(out, WellMatch{Well: int(it.ID), Score: it.Score, Strata: strata})
	}
	return out, nil
}

// geoShardScanner compiles the Fig. 4 model against one well shard's
// columnar strata planes. One scanner (and one pair of grade closures)
// is built per shard per request; advancing to the next well is a base
// offset update, so the per-well cost is zero allocations instead of a
// query struct and two closures. The grade formulas are identical to
// geologySprocQuery's; only the storage they read is columnar.
type geoShardScanner struct {
	sh   *wellShard
	q    GeologyQuery
	base int
	sq   sproc.Query
}

func newGeoShardScanner(sh *wellShard, q GeologyQuery) *geoShardScanner {
	g := &geoShardScanner{sh: sh, q: q}
	g.sq = sproc.Query{
		M:     len(q.Sequence),
		Unary: g.unary,
		Pair:  g.pair,
	}
	return g
}

// setWell points the scanner at well i of its shard and returns the
// well's stratum count.
func (g *geoShardScanner) setWell(i int) int {
	g.base = g.sh.off[i]
	return g.sh.strataLen(i)
}

func (g *geoShardScanner) gammaGrade(gv float64) float64 {
	if g.q.GammaRampAPI <= 0 {
		if gv > g.q.MinGamma {
			return 1
		}
		return 0
	}
	lo := g.q.MinGamma - g.q.GammaRampAPI
	hi := g.q.MinGamma + g.q.GammaRampAPI
	switch {
	case gv <= lo:
		return 0
	case gv >= hi:
		return 1
	default:
		return (gv - lo) / (hi - lo)
	}
}

func (g *geoShardScanner) unary(m, item int) float64 {
	s := g.base + item
	if g.sh.lith[s] != g.q.Sequence[m] {
		return 0
	}
	return g.gammaGrade(g.sh.gamma[s])
}

func (g *geoShardScanner) pair(m, prev, cur int) float64 {
	a, b := g.base+prev, g.base+cur
	aTop, bTop := g.sh.topFt[a], g.sh.topFt[b]
	// The sequence is top-down: cur must start below prev's top,
	// within the adjacency gap of prev's bottom.
	if bTop <= aTop {
		return 0
	}
	gap := bTop - (aTop + g.sh.thickFt[a])
	if gap < 0 {
		gap = 0
	}
	if gap > g.q.MaxGapFt {
		return 0
	}
	return 1
}

// geologySprocQuery compiles the Fig. 4 model into a SPROC query over
// one well's strata.
func geologySprocQuery(w synth.WellLog, q GeologyQuery) sproc.Query {
	strata := w.Strata
	gammaGrade := func(g float64) float64 {
		if q.GammaRampAPI <= 0 {
			if g > q.MinGamma {
				return 1
			}
			return 0
		}
		lo := q.MinGamma - q.GammaRampAPI
		hi := q.MinGamma + q.GammaRampAPI
		switch {
		case g <= lo:
			return 0
		case g >= hi:
			return 1
		default:
			return (g - lo) / (hi - lo)
		}
	}
	return sproc.Query{
		M: len(q.Sequence),
		Unary: func(m, item int) float64 {
			s := strata[item]
			if s.Lith != q.Sequence[m] {
				return 0
			}
			return gammaGrade(s.GammaAPI)
		},
		Pair: func(m, prev, cur int) float64 {
			a, b := strata[prev], strata[cur]
			// The sequence is top-down: cur must start below prev's top,
			// within the adjacency gap of prev's bottom.
			if b.TopFt <= a.TopFt {
				return 0
			}
			gap := b.TopFt - (a.TopFt + a.ThickFt)
			if gap < 0 {
				gap = 0
			}
			if gap > q.MaxGapFt {
				return 0
			}
			return 1
		},
	}
}
