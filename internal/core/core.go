// Package core is the model-based information retrieval engine — the
// paper's primary contribution (Section 3). It unifies the three model
// families of Section 2 behind one retrieval surface:
//
//   - linear models over tuple archives   → Onion index [11];
//   - linear models over raster archives  → progressive model execution
//     on progressive data representations (Section 3.1);
//   - finite-state models over series     → metadata-pruned DFA runs
//     with FSM-distance ranking (Section 2.2);
//   - knowledge models over composite     → SPROC dynamic-programming
//     objects (well logs, …)                pruning [15,16].
//
// The engine owns the archives and caches the model-specific indexes, so
// repeated queries amortize index construction — the paper's premise
// that "indexing techniques specialized for the model" pay off at
// archive scale.
package core

import (
	"errors"
	"fmt"
	"sync"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/sproc"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// ModelKind enumerates the paper's model families.
type ModelKind int

// Model families (Section 2).
const (
	KindLinear ModelKind = iota + 1
	KindFiniteState
	KindKnowledge
)

// String names the model kind.
func (k ModelKind) String() string {
	switch k {
	case KindLinear:
		return "linear"
	case KindFiniteState:
		return "finite-state"
	case KindKnowledge:
		return "knowledge"
	default:
		return "unknown"
	}
}

// Engine is the retrieval front end. It is safe for concurrent readers
// once archives are registered (registration itself is serialized).
type Engine struct {
	mu      sync.Mutex
	tuples  map[string][][]float64
	onions  map[string]*onion.Index
	scenes  map[string]*archive.Scene
	series  map[string][]synth.RegionSeries
	summary map[string][]synth.DrySpellStats
	wells   map[string][]synth.WellLog
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{
		tuples:  make(map[string][][]float64),
		onions:  make(map[string]*onion.Index),
		scenes:  make(map[string]*archive.Scene),
		series:  make(map[string][]synth.RegionSeries),
		summary: make(map[string][]synth.DrySpellStats),
		wells:   make(map[string][]synth.WellLog),
	}
}

// Registration errors.
var (
	ErrDuplicateDataset = errors.New("core: dataset name already registered")
	ErrUnknownDataset   = errors.New("core: unknown dataset")
)

// AddTuples registers a tuple archive (rows of attribute vectors).
func (e *Engine) AddTuples(name string, points [][]float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.tuples[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	if len(points) == 0 {
		return errors.New("core: empty tuple set")
	}
	e.tuples[name] = points
	return nil
}

// AddScene registers a raster archive.
func (e *Engine) AddScene(name string, sc *archive.Scene) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.scenes[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	if sc == nil {
		return errors.New("core: nil scene")
	}
	e.scenes[name] = sc
	return nil
}

// AddSeries registers a weather/event series archive and precomputes the
// metadata-level summaries used for pruning.
func (e *Engine) AddSeries(name string, rs []synth.RegionSeries) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.series[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	if len(rs) == 0 {
		return errors.New("core: empty series archive")
	}
	sums := make([]synth.DrySpellStats, len(rs))
	for i, r := range rs {
		sums[i] = synth.SummarizeSeries(r)
	}
	e.series[name] = rs
	e.summary[name] = sums
	return nil
}

// AddWells registers a well-log archive.
func (e *Engine) AddWells(name string, ws []synth.WellLog) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.wells[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	if len(ws) == 0 {
		return errors.New("core: empty well archive")
	}
	e.wells[name] = ws
	return nil
}

// Scene returns a registered raster archive.
func (e *Engine) Scene(name string) (*archive.Scene, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sc, ok := e.scenes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return sc, nil
}

// LinearTupleStats reports the work of a tuple-archive linear query.
type LinearTupleStats struct {
	Indexed onion.Stats
	// ScanCost is the points a sequential scan would touch (the
	// paper's baseline denominator).
	ScanCost int
}

// LinearTopKTuples retrieves the top-K tuples maximizing the model over
// a registered tuple archive, via the Onion index (built and cached on
// first use). The model's coefficient order must match the tuple
// attribute order.
func (e *Engine) LinearTopKTuples(dataset string, m *linear.Model, k int) ([]topk.Item, LinearTupleStats, error) {
	var st LinearTupleStats
	e.mu.Lock()
	pts, ok := e.tuples[dataset]
	if !ok {
		e.mu.Unlock()
		return nil, st, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	ix := e.onions[dataset]
	e.mu.Unlock()

	if ix == nil {
		built, err := onion.Build(pts, onion.Options{})
		if err != nil {
			return nil, st, err
		}
		e.mu.Lock()
		if cached := e.onions[dataset]; cached != nil {
			ix = cached
		} else {
			e.onions[dataset] = built
			ix = built
		}
		e.mu.Unlock()
	}
	items, ost, err := ix.TopK(m.Coeffs, k)
	if err != nil {
		return nil, st, err
	}
	st.Indexed = ost
	st.ScanCost = len(pts)
	// The model's intercept shifts every score identically; add it so
	// returned scores equal model values.
	if m.Intercept != 0 {
		for i := range items {
			items[i].Score += m.Intercept
		}
	}
	return items, st, nil
}

// SceneTopK retrieves the top-K locations of a linear risk model over a
// registered raster archive using combined progressive execution. The
// returned item IDs encode locations as y*W + x.
func (e *Engine) SceneTopK(dataset string, pm *linear.ProgressiveModel, k int) ([]topk.Item, progressive.Stats, error) {
	sc, err := e.Scene(dataset)
	if err != nil {
		return nil, progressive.Stats{}, err
	}
	res, err := progressive.Combined(pm, sc.Pyramid(), k)
	if err != nil {
		return nil, progressive.Stats{}, err
	}
	return res.Items, res.Stats, nil
}

// FSMStats reports finite-state retrieval work.
type FSMStats struct {
	RegionsTotal  int
	RegionsPruned int
	DaysScanned   int
}

// FSMPrefilter decides, from metadata alone, whether a region can
// possibly satisfy the machine. Returning false skips the full scan.
type FSMPrefilter func(synth.DrySpellStats) bool

// FireAntsPrefilter is the sound metadata filter for the Fig. 1 machine:
// flying needs a >= 3-day dry spell containing a hot (>= 25°C) day at
// position >= 3.
func FireAntsPrefilter(s synth.DrySpellStats) bool {
	return s.MaxDrySpell >= 3 && s.MaxTempAfterDry3 >= fsm.FlyTempC
}

// FSMTopK ranks regions of a series archive by fsm.FlyScore under the
// given machine. A nil prefilter scans every region (the baseline); a
// prefilter skips regions whose metadata proves a zero score.
func (e *Engine) FSMTopK(dataset string, m *fsm.Machine, k int, pre FSMPrefilter) ([]topk.Item, FSMStats, error) {
	var st FSMStats
	e.mu.Lock()
	rs, ok := e.series[dataset]
	sums := e.summary[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, st, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, st, err
	}
	st.RegionsTotal = len(rs)
	for i, r := range rs {
		if pre != nil && !pre(sums[i]) {
			st.RegionsPruned++
			continue
		}
		events := fsm.ClassifySeries(r.Days)
		st.DaysScanned += len(events)
		score, err := fsm.FlyScore(m, events)
		if err != nil {
			return nil, st, err
		}
		if score > 0 {
			h.OfferScore(int64(r.Region), score)
		}
	}
	return h.Results(), st, nil
}

// FSMDistanceRank ranks regions by how closely the machine their data
// exhibits matches the target machine (smaller distance = better rank,
// so scores are 1-distance). This is the paper's "distance between these
// two finite state machines" retrieval mode.
func (e *Engine) FSMDistanceRank(dataset string, target *fsm.Machine, k, horizon int) ([]topk.Item, error) {
	e.mu.Lock()
	rs, ok := e.series[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, err
	}
	for _, r := range rs {
		events := fsm.ClassifySeries(r.Days)
		extracted, err := fsm.Extract(target, [][]fsm.Event{events})
		if err != nil {
			return nil, err
		}
		d, err := fsm.Distance(target, extracted, horizon)
		if err != nil {
			return nil, err
		}
		h.OfferScore(int64(r.Region), 1-d)
	}
	return h.Results(), nil
}

// GeologyQuery is the Fig. 4 knowledge model: an ordered lithology
// sequence with adjacency and gamma-ray constraints.
type GeologyQuery struct {
	// Sequence is the top-down lithology pattern (e.g. shale, sandstone,
	// siltstone).
	Sequence []synth.Lithology
	// MaxGapFt bounds the gap between consecutive strata ("adjacent
	// < 10 ft" in Fig. 4).
	MaxGapFt float64
	// MinGamma is the gamma-ray floor ("higher than 45").
	MinGamma float64
	// GammaRampAPI softens the gamma threshold: grades ramp from 0 at
	// MinGamma-GammaRamp to 1 at MinGamma+GammaRamp. Zero = crisp.
	GammaRampAPI float64
}

// Validate checks the query.
func (q GeologyQuery) Validate() error {
	if len(q.Sequence) == 0 {
		return errors.New("core: empty lithology sequence")
	}
	if q.MaxGapFt < 0 {
		return errors.New("core: negative adjacency gap")
	}
	return nil
}

// WellMatch is one retrieved well.
type WellMatch struct {
	Well  int
	Score float64
	// Strata are the matched layer indices, one per query slot.
	Strata []int
}

// GeologyMethod selects the SPROC evaluator.
type GeologyMethod int

// Evaluator choices for GeologyTopK.
const (
	GeoBruteForce GeologyMethod = iota + 1
	GeoDP
	GeoPruned
)

// GeologyTopK retrieves the top-K wells whose strata best satisfy the
// knowledge model, evaluating each well's composite query with the
// chosen SPROC method and ranking wells by their best match score.
func (e *Engine) GeologyTopK(dataset string, q GeologyQuery, k int, method GeologyMethod) ([]WellMatch, sproc.Stats, error) {
	var agg sproc.Stats
	if err := q.Validate(); err != nil {
		return nil, agg, err
	}
	e.mu.Lock()
	ws, ok := e.wells[dataset]
	e.mu.Unlock()
	if !ok {
		return nil, agg, fmt.Errorf("%w: %q", ErrUnknownDataset, dataset)
	}
	h, err := topk.NewHeap(k)
	if err != nil {
		return nil, agg, err
	}
	for wi := range ws {
		sq := geologySprocQuery(ws[wi], q)
		var (
			matches []sproc.Match
			st      sproc.Stats
		)
		switch method {
		case GeoBruteForce:
			matches, st, err = sproc.BruteForce(len(ws[wi].Strata), sq, 1)
		case GeoDP:
			matches, st, err = sproc.DP(len(ws[wi].Strata), sq, 1)
		case GeoPruned:
			matches, st, err = sproc.Pruned(len(ws[wi].Strata), sq, 1)
		default:
			return nil, agg, fmt.Errorf("core: unknown geology method %d", method)
		}
		if err != nil {
			return nil, agg, err
		}
		agg.UnaryEvals += st.UnaryEvals
		agg.PairEvals += st.PairEvals
		agg.TuplesConsidered += st.TuplesConsidered
		if len(matches) > 0 && matches[0].Score > 0 {
			h.Offer(topk.Item{
				ID:      int64(ws[wi].Well),
				Score:   matches[0].Score,
				Payload: matches[0].Items,
			})
		}
	}
	var out []WellMatch
	for _, it := range h.Results() {
		strata, ok := it.Payload.([]int)
		if !ok {
			return nil, agg, errors.New("core: internal payload corruption")
		}
		out = append(out, WellMatch{Well: int(it.ID), Score: it.Score, Strata: strata})
	}
	return out, agg, nil
}

// geologySprocQuery compiles the Fig. 4 model into a SPROC query over
// one well's strata.
func geologySprocQuery(w synth.WellLog, q GeologyQuery) sproc.Query {
	strata := w.Strata
	gammaGrade := func(g float64) float64 {
		if q.GammaRampAPI <= 0 {
			if g > q.MinGamma {
				return 1
			}
			return 0
		}
		lo := q.MinGamma - q.GammaRampAPI
		hi := q.MinGamma + q.GammaRampAPI
		switch {
		case g <= lo:
			return 0
		case g >= hi:
			return 1
		default:
			return (g - lo) / (hi - lo)
		}
	}
	return sproc.Query{
		M: len(q.Sequence),
		Unary: func(m, item int) float64 {
			s := strata[item]
			if s.Lith != q.Sequence[m] {
				return 0
			}
			return gammaGrade(s.GammaAPI)
		},
		Pair: func(m, prev, cur int) float64 {
			a, b := strata[prev], strata[cur]
			// The sequence is top-down: cur must start below prev's top,
			// within the adjacency gap of prev's bottom.
			if b.TopFt <= a.TopFt {
				return 0
			}
			gap := b.TopFt - (a.TopFt + a.ThickFt)
			if gap < 0 {
				gap = 0
			}
			if gap > q.MaxGapFt {
				return 0
			}
			return 1
		},
	}
}
