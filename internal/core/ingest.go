// Live ingest: registered datasets stay appendable under traffic.
// AppendTuples/AppendSeries/AppendWells land new rows as immutable
// in-memory delta segments — one more shard value of the dataset's
// existing columnar type, built OUTSIDE the engine lock — and swap in
// a new set value that shares the base shards, so the write lock is
// held only for the pointer swap. Queries scan base + deltas through
// the set's scan list; per-shard indexes over deltas derive lazily,
// exactly like a base shard's (the Onion index builds on first use).
//
// A background compactor folds deltas back into balanced base shards
// when a dataset accumulates enough of them (segment count or row
// fraction): full rebuild when the raw registration rows are at hand,
// delta-merge on snapshot-restored bases. Compaction changes layout,
// never content — answers and the dataset's cache generation are
// unchanged, so live cache entries stay valid across it.
//
// Equivalence contract (pinned by TestDeltaEquivalenceAllFamilies):
// a dataset holding any mix of base and delta segments answers every
// query family bit-identically to a fresh engine rebuilt from the
// same rows, at any shard count. Tuple IDs are global row offsets and
// deltas continue the row space; series and well IDs are intrinsic.

package core

import (
	"errors"
	"fmt"

	"modelir/internal/synth"
)

// Compaction triggers: a dataset is scheduled for background
// compaction when it holds at least compactDeltaSegments delta
// segments, or its delta rows reach compactDeltaFraction of the total.
const (
	compactDeltaSegments = 4
	compactDeltaFraction = 0.25
)

// AppendTuples appends rows to a registered tuple dataset as one
// immutable delta segment. New rows take IDs continuing the dataset's
// global row space (exactly the IDs they would have had in a single
// registration); queries observe either the pre- or post-append world,
// never a partial one, and the dataset's cache generation advances so
// no stale cached result is ever served. The rows are not copied; the
// caller must not mutate them afterwards.
func (e *Engine) AppendTuples(name string, points [][]float64) error {
	if len(points) == 0 {
		return errors.New("core: empty tuple append")
	}
	e.mu.Lock()
	ts, ok := e.tuples[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	// The tuple delta is cheap to construct (its Onion index builds
	// lazily on first query), so it happens under the lock where the
	// offset assignment is race-free.
	e.tuples[name] = ts.withDelta(points)
	e.epoch.Add(1)
	e.mu.Unlock()
	e.maybeCompact(dsTuples, name)
	return nil
}

// AppendTuplesAt is AppendTuples with an explicit global row base: the
// appended rows take IDs base..base+len(points)-1 instead of continuing
// the dataset's local row space. This is the cluster landing path — a
// router assigns each replicated batch a contiguous ID range from the
// dataset's global row counter, and every replica of the owning
// partition lands it at the same base, so cluster answers stay
// bit-identical to a single-node engine that appended the same batches
// in ID order. base must not overlap existing rows; a base beyond the
// current row watermark leaves a gap in the local ID space, which pins
// the dataset against compaction (offsets must survive verbatim).
func (e *Engine) AppendTuplesAt(name string, base int64, points [][]float64) error {
	if len(points) == 0 {
		return errors.New("core: empty tuple append")
	}
	if base < 0 {
		return fmt.Errorf("core: negative append base %d", base)
	}
	e.mu.Lock()
	ts, ok := e.tuples[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	if int(base) < ts.rows {
		e.mu.Unlock()
		return fmt.Errorf("core: append base %d overlaps rows [0,%d) of %q", base, ts.rows, name)
	}
	e.tuples[name] = ts.withDeltaAt(int(base), points)
	e.epoch.Add(1)
	e.mu.Unlock()
	e.maybeCompact(dsTuples, name)
	return nil
}

// AppendSeries appends regions to a registered series dataset as one
// immutable delta segment. Summaries and the columnar event plane are
// precomputed outside the engine lock. See AppendTuples for the
// visibility and generation contract.
func (e *Engine) AppendSeries(name string, rs []synth.RegionSeries) error {
	if len(rs) == 0 {
		return errors.New("core: empty series append")
	}
	if !e.hasDataset(dsSeries, name) {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	sh := newSeriesShard(rs)
	e.mu.Lock()
	ss, ok := e.series[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	e.series[name] = ss.withDelta(sh)
	e.epoch.Add(1)
	e.mu.Unlock()
	e.maybeCompact(dsSeries, name)
	return nil
}

// AppendWells appends wells to a registered well-log dataset as one
// immutable delta segment. The columnar strata planes are flattened
// outside the engine lock. See AppendTuples for the visibility and
// generation contract.
func (e *Engine) AppendWells(name string, ws []synth.WellLog) error {
	if len(ws) == 0 {
		return errors.New("core: empty well append")
	}
	if !e.hasDataset(dsWells, name) {
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	sh := newWellShard(ws)
	e.mu.Lock()
	s, ok := e.wells[name]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	e.wells[name] = s.withDelta(sh)
	e.epoch.Add(1)
	e.mu.Unlock()
	e.maybeCompact(dsWells, name)
	return nil
}

// hasDataset is the cheap pre-build existence probe for the append
// paths that construct their delta outside the lock.
func (e *Engine) hasDataset(k dsKind, name string) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.takenLocked(k, name)
}

// maybeCompact schedules a background compaction when the dataset's
// delta accumulation crosses a trigger. At most one compaction per
// dataset runs at a time; triggers observed while one is in flight
// are re-checked by the next append.
func (e *Engine) maybeCompact(k dsKind, name string) {
	var deltas, deltaRows, rows int
	e.mu.RLock()
	switch k {
	case dsTuples:
		// A pinned set (explicit-base deltas) never compacts; reporting
		// zero deltas here skips the no-op scheduling entirely.
		if ts := e.tuples[name]; ts != nil && !ts.pinned {
			deltas, deltaRows, rows = len(ts.deltas), ts.deltaRows(), ts.rows
		}
	case dsSeries:
		if ss := e.series[name]; ss != nil {
			deltas, deltaRows, rows = len(ss.deltas), ss.deltaRows(), ss.total
		}
	case dsWells:
		if s := e.wells[name]; s != nil {
			deltas, deltaRows, rows = len(s.deltas), s.deltaRows(), s.total
		}
	}
	e.mu.RUnlock()
	if deltas == 0 {
		return
	}
	if deltas < compactDeltaSegments && float64(deltaRows) < compactDeltaFraction*float64(rows) {
		return
	}
	key := dsName{k, name}
	e.mu.Lock()
	if e.compacting[key] {
		e.mu.Unlock()
		return
	}
	e.compacting[key] = true
	e.compactWG.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.compactWG.Done()
		e.compactOne(k, name)
		e.mu.Lock()
		delete(e.compacting, key)
		e.mu.Unlock()
	}()
}

// compactOne builds the compacted replacement outside the lock, then
// swaps it in. Appends racing the build only extend the captured set's
// delta list (base shards are immutable and only one compactor per
// dataset runs), so the deltas landed since the capture carry over
// verbatim: for tuples their offsets already continue the captured
// row space the merged base covers.
func (e *Engine) compactOne(k dsKind, name string) {
	switch k {
	case dsTuples:
		e.mu.RLock()
		old := e.tuples[name]
		e.mu.RUnlock()
		if old == nil {
			return
		}
		merged := old.compact(e.shards)
		if merged == nil {
			return
		}
		e.mu.Lock()
		cur := e.tuples[name]
		if cur == nil || len(cur.deltas) < len(old.deltas) {
			e.mu.Unlock()
			return
		}
		extra := cur.deltas[len(old.deltas):]
		nt := &tupleSet{
			points: merged.points,
			rows:   cur.rows,
			shards: merged.shards,
			deltas: append(merged.deltas[:len(merged.deltas):len(merged.deltas)], extra...),
			gen:    cur.gen,
			pinned: cur.pinned,
		}
		nt.scan = append(merged.shards[:len(merged.shards):len(merged.shards)], nt.deltas...)
		e.tuples[name] = nt
		e.mu.Unlock()
	case dsSeries:
		e.mu.RLock()
		old := e.series[name]
		e.mu.RUnlock()
		if old == nil {
			return
		}
		merged := old.compact(e.shards)
		if merged == nil {
			return
		}
		e.mu.Lock()
		cur := e.series[name]
		if cur == nil || len(cur.deltas) < len(old.deltas) {
			e.mu.Unlock()
			return
		}
		extra := cur.deltas[len(old.deltas):]
		ns := &seriesSet{
			total:  cur.total,
			shards: merged.shards,
			deltas: append(merged.deltas[:len(merged.deltas):len(merged.deltas)], extra...),
			raw:    merged.raw,
			gen:    cur.gen,
		}
		ns.scan = append(merged.shards[:len(merged.shards):len(merged.shards)], ns.deltas...)
		e.series[name] = ns
		e.mu.Unlock()
	case dsWells:
		e.mu.RLock()
		old := e.wells[name]
		e.mu.RUnlock()
		if old == nil {
			return
		}
		merged := old.compact(e.shards)
		if merged == nil {
			return
		}
		e.mu.Lock()
		cur := e.wells[name]
		if cur == nil || len(cur.deltas) < len(old.deltas) {
			e.mu.Unlock()
			return
		}
		extra := cur.deltas[len(old.deltas):]
		nw := &wellSet{
			total:  cur.total,
			shards: merged.shards,
			deltas: append(merged.deltas[:len(merged.deltas):len(merged.deltas)], extra...),
			raw:    merged.raw,
			gen:    cur.gen,
		}
		nw.scan = append(merged.shards[:len(merged.shards):len(merged.shards)], nw.deltas...)
		e.wells[name] = nw
		e.mu.Unlock()
	}
}

// Compact synchronously folds every dataset's delta segments into its
// base segments (full rebuild when the raw registration rows are at
// hand, delta-merge on restored bases). Answers before and after are
// bit-identical and dataset generations are unchanged, so live cache
// entries stay valid across the call. Appends may proceed
// concurrently; deltas landed mid-compaction simply survive it.
func (e *Engine) Compact() {
	e.mu.RLock()
	var targets []dsName
	for name, ts := range e.tuples {
		if len(ts.deltas) > 0 {
			targets = append(targets, dsName{dsTuples, name})
		}
	}
	for name, ss := range e.series {
		if len(ss.deltas) > 0 {
			targets = append(targets, dsName{dsSeries, name})
		}
	}
	for name, s := range e.wells {
		if len(s.deltas) > 0 {
			targets = append(targets, dsName{dsWells, name})
		}
	}
	e.mu.RUnlock()
	for _, t := range targets {
		e.compactOne(t.kind, t.name)
	}
}
