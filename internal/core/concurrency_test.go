package core

import (
	"sync"
	"testing"

	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// The engine promises safe concurrent readers, including the lazy Onion
// index construction racing across first queries. Run with -race.
func TestEngineConcurrentQueries(t *testing.T) {
	e := NewEngine()
	pts, err := synth.GaussianTuples(21, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTuples("t", pts); err != nil {
		t.Fatal(err)
	}
	weather, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 22, Regions: 40, Days: 365})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("w", weather); err != nil {
		t.Fatal(err)
	}
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 23, Wells: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("g", wells); err != nil {
		t.Fatal(err)
	}

	m, err := linear.New([]string{"a", "b", "c"}, []float64{1, 0.5, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	machine := fsm.FireAnts()
	gq := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone},
		MaxGapFt: 10, MinGamma: 45,
	}

	const workers = 16
	linearResults := make([][]topk.Item, workers)
	fsmResults := make([][]topk.Item, workers)
	geoResults := make([][]WellMatch, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items, _, err := e.LinearTopKTuples("t", m, 5)
			if err != nil {
				errs[w] = err
				return
			}
			linearResults[w] = items
			fitems, _, err := e.FSMTopK("w", machine, 5, FireAntsPrefilter)
			if err != nil {
				errs[w] = err
				return
			}
			fsmResults[w] = fitems
			gitems, _, err := e.GeologyTopK("g", gq, 5, GeoPruned)
			if err != nil {
				errs[w] = err
				return
			}
			geoResults[w] = gitems
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if len(linearResults[w]) != len(linearResults[0]) {
			t.Fatalf("worker %d linear result size differs", w)
		}
		for i := range linearResults[0] {
			if linearResults[w][i] != linearResults[0][i] {
				t.Fatalf("worker %d linear result differs at %d", w, i)
			}
		}
		for i := range fsmResults[0] {
			if fsmResults[w][i] != fsmResults[0][i] {
				t.Fatalf("worker %d fsm result differs at %d", w, i)
			}
		}
		for i := range geoResults[0] {
			if geoResults[w][i].Well != geoResults[0][i].Well ||
				geoResults[w][i].Score != geoResults[0][i].Score {
				t.Fatalf("worker %d geology result differs at %d", w, i)
			}
		}
	}
}
