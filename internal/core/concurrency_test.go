package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// The engine promises safe concurrent readers, including the lazy Onion
// index construction racing across first queries. Run with -race.
func TestEngineConcurrentQueries(t *testing.T) {
	e := NewEngine()
	pts, err := synth.GaussianTuples(21, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTuples("t", pts); err != nil {
		t.Fatal(err)
	}
	weather, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 22, Regions: 40, Days: 365})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("w", weather); err != nil {
		t.Fatal(err)
	}
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 23, Wells: 30})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("g", wells); err != nil {
		t.Fatal(err)
	}

	m, err := linear.New([]string{"a", "b", "c"}, []float64{1, 0.5, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	machine := fsm.FireAnts()
	gq := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone},
		MaxGapFt: 10, MinGamma: 45,
	}

	const workers = 16
	linearResults := make([][]topk.Item, workers)
	fsmResults := make([][]topk.Item, workers)
	geoResults := make([][]WellMatch, workers)
	errs := make([]error, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items, _, err := e.LinearTopKTuples("t", m, 5)
			if err != nil {
				errs[w] = err
				return
			}
			linearResults[w] = items
			fitems, _, err := e.FSMTopK("w", machine, 5, FireAntsPrefilter)
			if err != nil {
				errs[w] = err
				return
			}
			fsmResults[w] = fitems
			gitems, _, err := e.GeologyTopK("g", gq, 5, GeoPruned)
			if err != nil {
				errs[w] = err
				return
			}
			geoResults[w] = gitems
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w := 1; w < workers; w++ {
		if len(linearResults[w]) != len(linearResults[0]) {
			t.Fatalf("worker %d linear result size differs", w)
		}
		for i := range linearResults[0] {
			if linearResults[w][i] != linearResults[0][i] {
				t.Fatalf("worker %d linear result differs at %d", w, i)
			}
		}
		for i := range fsmResults[0] {
			if fsmResults[w][i] != fsmResults[0][i] {
				t.Fatalf("worker %d fsm result differs at %d", w, i)
			}
		}
		for i := range geoResults[0] {
			if geoResults[w][i].Well != geoResults[0][i].Well ||
				geoResults[w][i].Score != geoResults[0][i].Score {
				t.Fatalf("worker %d geology result differs at %d", w, i)
			}
		}
	}
}

// fixtures shared by the equivalence and stress tests: one archive per
// query family, sized so 7-way sharding still leaves non-trivial shards.
type testArchives struct {
	pts   [][]float64
	scene *archive.Scene
	pm    *linear.ProgressiveModel
	arch  []synth.RegionSeries
	wells []synth.WellLog
}

func buildArchives(t *testing.T) testArchives {
	t.Helper()
	var a testArchives
	var err error
	if a.pts, err = synth.GaussianTuples(51, 8000, 3); err != nil {
		t.Fatal(err)
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 52, W: 96, H: 96})
	if err != nil {
		t.Fatal(err)
	}
	if a.scene, err = archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 16, PyramidLevels: 4}); err != nil {
		t.Fatal(err)
	}
	if a.pm, err = linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4); err != nil {
		t.Fatal(err)
	}
	if a.arch, err = synth.WeatherArchive(synth.WeatherConfig{Seed: 53, Regions: 60, Days: 365}); err != nil {
		t.Fatal(err)
	}
	if a.wells, _, err = synth.WellArchive(synth.WellConfig{Seed: 54, Wells: 45}); err != nil {
		t.Fatal(err)
	}
	return a
}

func engineWithArchives(t *testing.T, shards int, a testArchives) *Engine {
	t.Helper()
	e := NewEngineWith(Options{Shards: shards})
	if e.NumShards() != shards {
		t.Fatalf("NumShards = %d, want %d", e.NumShards(), shards)
	}
	if err := e.AddTuples("gauss", a.pts); err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("hps", a.scene); err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("weather", a.arch); err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("basin", a.wells); err != nil {
		t.Fatal(err)
	}
	return e
}

func itemsEqual(t *testing.T, label string, got, want []topk.Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d items", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
			t.Fatalf("%s pos %d: got %d/%v want %d/%v",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// TestShardEquivalenceAllFamilies pins the tentpole invariant: a
// sharded engine returns the same top-K IDs and scores as a sequential
// (1-shard) engine on all four query families, for shard counts that
// divide the data evenly and ones that do not.
func TestShardEquivalenceAllFamilies(t *testing.T) {
	a := buildArchives(t)
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	geoQ := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
	machine := fsm.FireAnts()

	ref := engineWithArchives(t, 1, a)
	refLinear, refLinSt, err := ref.LinearTopKTuples("gauss", lm, 10)
	if err != nil {
		t.Fatal(err)
	}
	refScene, _, err := ref.SceneTopK("hps", a.pm, 10)
	if err != nil {
		t.Fatal(err)
	}
	refFSM, refFSMSt, err := ref.FSMTopK("weather", machine, 10, FireAntsPrefilter)
	if err != nil {
		t.Fatal(err)
	}
	refGeo, _, err := ref.GeologyTopK("basin", geoQ, 10, GeoPruned)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 4, 7} {
		e := engineWithArchives(t, shards, a)

		lin, linSt, err := e.LinearTopKTuples("gauss", lm, 10)
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("linear shards=%d", shards), lin, refLinear)
		if linSt.ScanCost != refLinSt.ScanCost {
			t.Fatalf("shards=%d scan cost %d vs %d", shards, linSt.ScanCost, refLinSt.ScanCost)
		}

		scene, sceneSt, err := e.SceneTopK("hps", a.pm, 10)
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("scene shards=%d", shards), scene, refScene)
		if sceneSt.Work() == 0 {
			t.Fatalf("shards=%d no scene work recorded", shards)
		}

		fsmItems, fsmSt, err := e.FSMTopK("weather", machine, 10, FireAntsPrefilter)
		if err != nil {
			t.Fatal(err)
		}
		itemsEqual(t, fmt.Sprintf("fsm shards=%d", shards), fsmItems, refFSM)
		// Prefilter decisions are per-region, so pruning stats are
		// shard-invariant too.
		if fsmSt.RegionsTotal != refFSMSt.RegionsTotal ||
			fsmSt.RegionsPruned != refFSMSt.RegionsPruned ||
			fsmSt.DaysScanned != refFSMSt.DaysScanned {
			t.Fatalf("shards=%d fsm stats %+v vs %+v", shards, fsmSt, refFSMSt)
		}

		geo, _, err := e.GeologyTopK("basin", geoQ, 10, GeoPruned)
		if err != nil {
			t.Fatal(err)
		}
		if len(geo) != len(refGeo) {
			t.Fatalf("geology shards=%d: %d vs %d wells", shards, len(geo), len(refGeo))
		}
		for i := range refGeo {
			if geo[i].Well != refGeo[i].Well || math.Abs(geo[i].Score-refGeo[i].Score) > 1e-12 {
				t.Fatalf("geology shards=%d pos %d: %+v vs %+v", shards, i, geo[i], refGeo[i])
			}
		}
	}
}

// TestConcurrentRegistrationAndQueries hammers one shared engine from
// many goroutines: registrations of fresh datasets race with queries on
// already-registered ones, including duplicate registrations that must
// fail cleanly. Run under -race this is the engine's thread-safety
// proof for mixed read/write traffic.
func TestConcurrentRegistrationAndQueries(t *testing.T) {
	a := buildArchives(t)
	e := engineWithArchives(t, 4, a)
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	machine := fsm.FireAnts()
	geoQ := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}

	wantLinear, _, err := e.LinearTopKTuples("gauss", lm, 5)
	if err != nil {
		t.Fatal(err)
	}

	const writers, readers, rounds = 4, 8, 6
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers)

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				name := fmt.Sprintf("tuples-%d-%d", w, r)
				if err := e.AddTuples(name, a.pts); err != nil {
					errc <- err
					return
				}
				// Duplicate registration must fail cleanly, not race.
				if err := e.AddTuples(name, a.pts); err == nil {
					errc <- fmt.Errorf("duplicate %q accepted", name)
					return
				}
				if err := e.AddSeries(fmt.Sprintf("series-%d-%d", w, r), a.arch); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				switch rd % 4 {
				case 0:
					items, _, err := e.LinearTopKTuples("gauss", lm, 5)
					if err != nil {
						errc <- err
						return
					}
					for i := range wantLinear {
						if items[i].ID != wantLinear[i].ID {
							errc <- fmt.Errorf("linear result drifted under load")
							return
						}
					}
				case 1:
					if _, _, err := e.SceneTopK("hps", a.pm, 5); err != nil {
						errc <- err
						return
					}
				case 2:
					if _, _, err := e.FSMTopK("weather", machine, 5, FireAntsPrefilter); err != nil {
						errc <- err
						return
					}
				case 3:
					if _, _, err := e.GeologyTopK("basin", geoQ, 5, GeoDP); err != nil {
						errc <- err
						return
					}
				}
			}
		}(rd)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentFirstQueryBuildsIndexOnce races many first queries at
// one dataset: every per-shard Onion index must be built exactly once
// (sync.Once) and all callers must see identical results.
func TestConcurrentFirstQueryBuildsIndexOnce(t *testing.T) {
	pts, err := synth.GaussianTuples(55, 6000, 3)
	if err != nil {
		t.Fatal(err)
	}
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{0.3, 1, -2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{Shards: 4})
	if err := e.AddTuples("t", pts); err != nil {
		t.Fatal(err)
	}
	const callers = 12
	results := make([][]topk.Item, callers)
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			items, _, err := e.LinearTopKTuples("t", lm, 8)
			if err != nil {
				errc <- err
				return
			}
			results[c] = items
		}(c)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for c := 1; c < callers; c++ {
		itemsEqual(t, fmt.Sprintf("caller %d", c), results[c], results[0])
	}
	e.mu.RLock()
	ts := e.tuples["t"]
	e.mu.RUnlock()
	if len(ts.shards) != 4 {
		t.Fatalf("%d shards, want 4", len(ts.shards))
	}
	total := 0
	for _, sh := range ts.shards {
		if sh.index == nil {
			t.Fatal("shard index not built")
		}
		total += sh.index.NumPoints()
	}
	if total != len(pts) {
		t.Fatalf("shard indexes cover %d points, want %d", total, len(pts))
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		n, want int
		expect  [][2]int
	}{
		{0, 4, nil},
		{3, 1, [][2]int{{0, 3}}},
		{3, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
		{10, 4, [][2]int{{0, 3}, {3, 6}, {6, 8}, {8, 10}}},
		{8, 4, [][2]int{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{5, 0, [][2]int{{0, 5}}},
	}
	for _, c := range cases {
		got := partition(c.n, c.want)
		if len(got) != len(c.expect) {
			t.Fatalf("partition(%d,%d) = %v, want %v", c.n, c.want, got, c.expect)
		}
		for i := range got {
			if got[i] != c.expect[i] {
				t.Fatalf("partition(%d,%d) = %v, want %v", c.n, c.want, got, c.expect)
			}
		}
	}
}

// TestShardEquivalenceWithTies is the adversarial version of the
// equivalence invariant: duplicated rows guarantee exact score ties,
// and which Onion layer holds each tied copy depends on shard
// boundaries. The (score, ID) tie-break must still make every shard
// count return the same winners.
func TestShardEquivalenceWithTies(t *testing.T) {
	base, err := synth.GaussianTuples(61, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Tile a tiny prototype set: every score occurs dozens of times and
	// deep Onion suffixes degenerate to copies of one prototype, whose
	// box bound equals the tied score exactly — the case where a
	// non-strict layer break would skip tied smaller-ID winners.
	pts := make([][]float64, 0, 300)
	for len(pts) < 300 {
		pts = append(pts, base[len(pts)%len(base)])
	}
	lm, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want []topk.Item
	for _, shards := range []int{1, 2, 5, 9} {
		e := NewEngineWith(Options{Shards: shards})
		if err := e.AddTuples("dup", pts); err != nil {
			t.Fatal(err)
		}
		items, _, err := e.LinearTopKTuples("dup", lm, 18)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = items
			// With 5 prototypes and k=18, ties are certain; the order
			// must be (score desc, ID asc).
			for i := 1; i < len(want); i++ {
				if want[i].Score > want[i-1].Score ||
					(want[i].Score == want[i-1].Score && want[i].ID < want[i-1].ID) {
					t.Fatalf("reference order violated at %d: %+v after %+v", i, want[i], want[i-1])
				}
			}
			continue
		}
		itemsEqual(t, fmt.Sprintf("ties shards=%d", shards), items, want)
	}
}
