// Snapshot/restore wiring between the engine and internal/segment.
// What is persisted is the *built* serving state — per-shard Onion
// colstore planes and suffix boxes, flat pyramid planes, precomputed
// series summaries and event planes, columnar well strata, the scene
// feature matrix — so OpenSnapshot reaches serving-ready without
// re-running a single index build, sort, or classification pass.
// Restored engines answer every query family bit-identically to the
// engine that wrote the snapshot: everything a query reads is either
// persisted verbatim or recomputed by a deterministic function of
// persisted state (root partitioning, feature column names).
//
// Per-kind section layout (canonical metadata uses internal/canon
// framing, tags "TS"/"PY"/"SS"/"WS"):
//
//	tuples  meta("TS": per-shard offset/rows/dim/flags) +
//	        s<k>.{ids,flat,blockstart,zonelo,zonehi,zonenorm,
//	               segstart,segblock,suffixlo,suffixhi,suffixnorm}
//	scenes  meta(gob scene metadata) + pyr("PY": band names, level
//	        geometry) + pyr<l> planes + feat matrix
//	series  meta("SS": region id/summary/day-count) + events plane
//	wells   meta("WS": well id/stratum-count) + lith/topft/thickft/gamma
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"modelir/internal/archive"
	"modelir/internal/canon"
	"modelir/internal/colstore"
	"modelir/internal/fsm"
	"modelir/internal/onion"
	"modelir/internal/pyramid"
	"modelir/internal/segment"
	"modelir/internal/synth"
)

// Manifest kind tags.
const (
	kindTuples = "tuples"
	kindScenes = "scenes"
	kindSeries = "series"
	kindWells  = "wells"
)

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Rows int    `json:"rows"`
	// Gen is the dataset's cache-invalidation generation: 1 at
	// registration, +1 per append (cache.go).
	Gen uint64 `json:"gen"`
	// Deltas counts the dataset's live delta segments awaiting
	// compaction (always 0 for scenes, which are not appendable).
	Deltas int `json:"deltas"`
}

// Datasets lists every registered dataset sorted by name (then kind —
// names are scoped per kind, so the same name may carry two kinds).
func (e *Engine) Datasets() []DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.datasetsLocked()
}

func (e *Engine) datasetsLocked() []DatasetInfo {
	out := make([]DatasetInfo, 0, len(e.tuples)+len(e.scenes)+len(e.series)+len(e.wells))
	for name, ts := range e.tuples {
		out = append(out, DatasetInfo{Name: name, Kind: kindTuples, Rows: ts.rows, Gen: ts.gen, Deltas: len(ts.deltas)})
	}
	for name, ss := range e.scenes {
		out = append(out, DatasetInfo{Name: name, Kind: kindScenes, Rows: len(ss.scene.Tiles), Gen: ss.gen})
	}
	for name, ss := range e.series {
		out = append(out, DatasetInfo{Name: name, Kind: kindSeries, Rows: ss.total, Gen: ss.gen, Deltas: len(ss.deltas)})
	}
	for name, ws := range e.wells {
		out = append(out, DatasetInfo{Name: name, Kind: kindWells, Rows: ws.total, Gen: ws.gen, Deltas: len(ws.deltas)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// Snapshot persists every registered dataset's built serving state to
// b. Tuple shards whose Onion index has not been demanded yet are
// built here (a snapshot must capture serving-ready state, and lazy
// builds after restore would need the raw points we don't persist).
// Registrations, appends and compactions block for the duration
// (Snapshot holds the read lock end to end, and all of those need the
// write lock to swap state in); queries do not. A snapshot racing a
// concurrent Add* or Append* therefore captures a consistent pre- or
// post-change world, never a torn one. Delta segments are persisted
// as additional shards: tuple deltas as further contiguous shard
// entries, series/well deltas folded into the global planes — either
// way the restored engine answers bit-identically.
func (e *Engine) Snapshot(ctx context.Context, b segment.Backend) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	w, err := segment.NewWriter(b, e.shards)
	if err != nil {
		return err
	}
	for _, info := range e.datasetsLocked() {
		if err := ctx.Err(); err != nil {
			return err
		}
		switch info.Kind {
		case kindTuples:
			err = snapTuples(w, info, e.tuples[info.Name], e.onionOpt)
		case kindScenes:
			err = snapScene(w, info, e.scenes[info.Name])
		case kindSeries:
			err = snapSeries(w, info, e.series[info.Name])
		case kindWells:
			err = snapWells(w, info, e.wells[info.Name])
		}
		if err != nil {
			return fmt.Errorf("core: snapshot %s %q: %w", info.Kind, info.Name, err)
		}
	}
	return w.Finish()
}

// SnapshotDatasets persists only the named datasets to b — the donor
// side of cluster resync, where a replica streams a consistent
// snapshot of exactly the partitions a stale peer owes. Selection is
// by name across every kind (engine-local cluster names are unique, so
// a name selects one dataset in practice); a name matching nothing is
// an error, because a donor must actually hold what it offered. Like
// Snapshot it holds the read lock end to end, so the captured state is
// one consistent cut even under concurrent appends elsewhere.
func (e *Engine) SnapshotDatasets(ctx context.Context, b segment.Backend, names []string) error {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	w, err := segment.NewWriter(b, e.shards)
	if err != nil {
		return err
	}
	seen := make(map[string]bool, len(names))
	for _, info := range e.datasetsLocked() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !want[info.Name] {
			continue
		}
		seen[info.Name] = true
		switch info.Kind {
		case kindTuples:
			err = snapTuples(w, info, e.tuples[info.Name], e.onionOpt)
		case kindScenes:
			err = snapScene(w, info, e.scenes[info.Name])
		case kindSeries:
			err = snapSeries(w, info, e.series[info.Name])
		case kindWells:
			err = snapWells(w, info, e.wells[info.Name])
		}
		if err != nil {
			return fmt.Errorf("core: snapshot %s %q: %w", info.Kind, info.Name, err)
		}
	}
	for _, n := range names {
		if !seen[n] {
			return fmt.Errorf("%w: %q", ErrUnknownDataset, n)
		}
	}
	return w.Finish()
}

// InstallDatasets replaces (or creates) the named datasets from a
// snapshot on b — the receiver side of cluster resync. The restore
// runs in Copy mode (the backend is transient) with every section
// checksum verified during decode, all outside the engine lock; the
// swap itself happens atomically under the write lock, and each
// installed dataset's generation is bumped strictly past the replaced
// one so cached results over the old state invalidate. Snapshot
// datasets that are not named are ignored; a named dataset missing
// from the snapshot is an error. An in-flight background compaction of
// a replaced dataset aborts on its own re-check (the installed set has
// no deltas, so the compactor's splice guard refuses to fold stale
// state over it).
func (e *Engine) InstallDatasets(b segment.Backend, names []string) error {
	if len(names) == 0 {
		return nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	snap, err := segment.Open(b, segment.Copy)
	if err != nil {
		return err
	}
	defer snap.Close()

	type stagedSet struct {
		name string
		kind string
		ts   *tupleSet
		sc   *sceneSet
		se   *seriesSet
		ws   *wellSet
	}
	var staged []stagedSet
	seen := make(map[string]bool, len(names))
	for _, ds := range snap.Manifest().Datasets {
		if !want[ds.Name] {
			continue
		}
		seen[ds.Name] = true
		dr, err := snap.Dataset(ds.Kind, ds.Name)
		if err != nil {
			return err
		}
		st := stagedSet{name: ds.Name, kind: ds.Kind}
		switch ds.Kind {
		case kindTuples:
			st.ts, err = restoreTuples(dr, ds.Rows)
		case kindScenes:
			st.sc, err = restoreScene(dr, e.shards)
		case kindSeries:
			st.se, err = restoreSeries(dr, e.shards)
		case kindWells:
			st.ws, err = restoreWells(dr, e.shards)
		default:
			err = fmt.Errorf("%w: dataset %q has unknown kind %q", segment.ErrCorrupt, ds.Name, ds.Kind)
		}
		if err != nil {
			return fmt.Errorf("core: install %s %q: %w", ds.Kind, ds.Name, err)
		}
		staged = append(staged, st)
	}
	for _, n := range names {
		if !seen[n] {
			return fmt.Errorf("core: install: %w: %q not in snapshot", ErrUnknownDataset, n)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	for _, st := range staged {
		switch st.kind {
		case kindTuples:
			if old := e.tuples[st.name]; old != nil {
				st.ts.gen = old.gen + 1
			}
			e.tuples[st.name] = st.ts
		case kindScenes:
			if old := e.scenes[st.name]; old != nil {
				st.sc.gen = old.gen + 1
			}
			e.scenes[st.name] = st.sc
		case kindSeries:
			if old := e.series[st.name]; old != nil {
				st.se.gen = old.gen + 1
			}
			e.series[st.name] = st.se
		case kindWells:
			if old := e.wells[st.name]; old != nil {
				st.ws.gen = old.gen + 1
			}
			e.wells[st.name] = st.ws
		}
	}
	e.epoch.Add(1)
	return nil
}

// RestoreOptions tunes OpenSnapshot.
type RestoreOptions struct {
	// Mode selects Copy (portable) or Map (zero-copy mmap) restore.
	Mode segment.RestoreMode
	// Options configures the restored engine's serving layer (cache,
	// admission control, onion options for datasets added later).
	// Shards is ignored: the manifest's shard count is authoritative,
	// because persisted per-shard state must match the partition
	// layout the engine serves with.
	Options Options
}

// OpenSnapshot restores an engine from a snapshot on b. In Map mode
// the engine's columnar planes alias read-only mappings owned by the
// snapshot; Close the engine to release them.
func OpenSnapshot(b segment.Backend, opt RestoreOptions) (*Engine, error) {
	snap, err := segment.Open(b, opt.Mode)
	if err != nil {
		return nil, err
	}
	eopt := opt.Options
	eopt.Shards = snap.Manifest().Shards
	e := NewEngineWith(eopt)
	if err := e.restoreFrom(snap); err != nil {
		snap.Close()
		return nil, err
	}
	if opt.Mode == segment.Map {
		// Mapped planes live inside the snapshot's mappings; tie their
		// lifetime to the engine.
		e.closers = append(e.closers, snap.Close)
	} else {
		snap.Close()
	}
	return e, nil
}

// Close releases resources a restored engine holds (mmap'd segment
// files) after waiting out any background delta compactions in flight.
// Idempotent; a built engine's Close is a no-op. Do not append
// concurrently with Close. After Close a Map-restored engine must not
// be queried.
func (e *Engine) Close() error {
	e.compactWG.Wait()
	e.mu.Lock()
	closers := e.closers
	e.closers = nil
	e.mu.Unlock()
	var first error
	for _, c := range closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (e *Engine) restoreFrom(snap *segment.Snapshot) error {
	for _, ds := range snap.Manifest().Datasets {
		dr, err := snap.Dataset(ds.Kind, ds.Name)
		if err != nil {
			return err
		}
		switch ds.Kind {
		case kindTuples:
			ts, err := restoreTuples(dr, ds.Rows)
			if err != nil {
				return fmt.Errorf("core: restore tuples %q: %w", ds.Name, err)
			}
			e.tuples[ds.Name] = ts
		case kindScenes:
			ss, err := restoreScene(dr, e.shards)
			if err != nil {
				return fmt.Errorf("core: restore scene %q: %w", ds.Name, err)
			}
			e.scenes[ds.Name] = ss
		case kindSeries:
			ss, err := restoreSeries(dr, e.shards)
			if err != nil {
				return fmt.Errorf("core: restore series %q: %w", ds.Name, err)
			}
			e.series[ds.Name] = ss
		case kindWells:
			ws, err := restoreWells(dr, e.shards)
			if err != nil {
				return fmt.Errorf("core: restore wells %q: %w", ds.Name, err)
			}
			e.wells[ds.Name] = ws
		default:
			return fmt.Errorf("%w: dataset %q has unknown kind %q", segment.ErrCorrupt, ds.Name, ds.Kind)
		}
		e.epoch.Add(1)
	}
	return nil
}

// ---- tuples ----

func snapTuples(w *segment.Writer, info DatasetInfo, ts *tupleSet, opt onion.Options) error {
	dw, err := w.Dataset(info.Name, kindTuples, info.Rows)
	if err != nil {
		return err
	}
	meta := []byte("TS")
	meta = canon.AppendUint(meta, uint64(len(ts.scan)))
	for k, sh := range ts.scan {
		ix, err := sh.ensureIndex(opt)
		if err != nil {
			return fmt.Errorf("shard %d index: %w", k, err)
		}
		sp := ix.Store().Planes()
		op := ix.Planes()
		meta = canon.AppendUint(meta, uint64(sh.offset))
		meta = canon.AppendUint(meta, uint64(sp.Rows))
		meta = canon.AppendUint(meta, uint64(sp.Dim))
		meta = append(meta, boolByte(op.Exact), boolByte(op.CoreIsBucket))
		pre := func(s string) string { return fmt.Sprintf("s%d.%s", k, s) }
		if err := firstErr(
			dw.Ints(pre("ids"), sp.IDs),
			dw.Floats(pre("flat"), sp.Flat),
			dw.Ints(pre("blockstart"), intsToI64(sp.BlockStart)),
			dw.Floats(pre("zonelo"), sp.ZoneLo),
			dw.Floats(pre("zonehi"), sp.ZoneHi),
			dw.Floats(pre("zonenorm"), sp.ZoneNorm),
			dw.Ints(pre("segstart"), intsToI64(sp.SegStart)),
			dw.Ints(pre("segblock"), intsToI64(sp.SegBlock)),
			dw.Floats(pre("suffixlo"), op.SuffixLo),
			dw.Floats(pre("suffixhi"), op.SuffixHi),
			dw.Floats(pre("suffixnorm"), op.SuffixNorm),
		); err != nil {
			return err
		}
	}
	if err := dw.Raw("meta", meta); err != nil {
		return err
	}
	return dw.Close()
}

func restoreTuples(dr *segment.DatasetReader, rows int) (*tupleSet, error) {
	meta, err := dr.Raw("meta")
	if err != nil {
		return nil, err
	}
	r := canon.NewReader(meta)
	if err := r.Expect("TS"); err != nil {
		return nil, fmt.Errorf("%w: tuple meta tag", segment.ErrCorrupt)
	}
	nshards, err := r.Count(26) // 3 uints + 2 flag bytes per shard
	if err != nil || nshards < 1 {
		return nil, fmt.Errorf("%w: tuple meta shard count", segment.ErrCorrupt)
	}
	shards := make([]*tupleShard, 0, nshards)
	next := 0
	for k := 0; k < nshards; k++ {
		offset, err1 := r.Uint()
		shRows, err2 := r.Uint()
		dim, err3 := r.Uint()
		exact, err4 := r.Byte()
		coreIsBucket, err5 := r.Byte()
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			return nil, fmt.Errorf("%w: tuple meta shard %d", segment.ErrCorrupt, k)
		}
		// Shards tile the row space in monotone order. Gaps are legal:
		// a cluster partition holds only its own global ID ranges
		// (AppendTuplesAt lands batches at explicit bases), so a snapshot
		// of such a dataset has delta shards starting past the previous
		// shard's end. Overlap is never legal — IDs would collide.
		if int(offset) < next {
			return nil, fmt.Errorf("%w: tuple shard %d offset %d overlaps previous end %d", segment.ErrCorrupt, k, offset, next)
		}
		next = int(offset) + int(shRows)
		pre := func(s string) string { return fmt.Sprintf("s%d.%s", k, s) }
		sp := colstore.Planes{Dim: int(dim), Rows: int(shRows)}
		var op onion.Planes
		op.Dim = int(dim)
		op.Exact = exact != 0
		op.CoreIsBucket = coreIsBucket != 0
		var ids, blockStart, segStart, segBlock []int64
		if err := firstErr(
			readI64(dr, pre("ids"), &ids),
			readF64(dr, pre("flat"), &sp.Flat),
			readI64(dr, pre("blockstart"), &blockStart),
			readF64(dr, pre("zonelo"), &sp.ZoneLo),
			readF64(dr, pre("zonehi"), &sp.ZoneHi),
			readF64(dr, pre("zonenorm"), &sp.ZoneNorm),
			readI64(dr, pre("segstart"), &segStart),
			readI64(dr, pre("segblock"), &segBlock),
			readF64(dr, pre("suffixlo"), &op.SuffixLo),
			readF64(dr, pre("suffixhi"), &op.SuffixHi),
			readF64(dr, pre("suffixnorm"), &op.SuffixNorm),
		); err != nil {
			return nil, err
		}
		sp.IDs = ids
		sp.BlockStart = i64ToInts(blockStart)
		sp.SegStart = i64ToInts(segStart)
		sp.SegBlock = i64ToInts(segBlock)
		store, err := colstore.FromPlanes(sp)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", segment.ErrCorrupt, k, err)
		}
		ix, err := onion.FromParts(op, store)
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d: %v", segment.ErrCorrupt, k, err)
		}
		shards = append(shards, restoredTupleShard(int(offset), ix))
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing tuple meta", segment.ErrCorrupt)
	}
	if next != rows {
		return nil, fmt.Errorf("%w: tuple shards cover %d rows, manifest says %d", segment.ErrCorrupt, next, rows)
	}
	return restoredTupleSet(rows, shards), nil
}

// ---- scenes ----

func snapScene(w *segment.Writer, info DatasetInfo, ss *sceneSet) error {
	dw, err := w.Dataset(info.Name, kindScenes, info.Rows)
	if err != nil {
		return err
	}
	var metaBuf bytes.Buffer
	if err := ss.scene.EncodeMeta(&metaBuf); err != nil {
		return err
	}
	if err := dw.Raw("meta", metaBuf.Bytes()); err != nil {
		return err
	}
	mp := ss.scene.Pyramid()
	pt := []byte("PY")
	pt = canon.AppendUint(pt, uint64(mp.NumBands()))
	for b := 0; b < mp.NumBands(); b++ {
		pt = canon.AppendString(pt, mp.BandName(b))
	}
	pt = canon.AppendUint(pt, uint64(mp.NumLevels()))
	for l := 0; l < mp.NumLevels(); l++ {
		fl := mp.Flat(l)
		pt = canon.AppendUint(pt, uint64(fl.W))
		pt = canon.AppendUint(pt, uint64(fl.H))
		pt = canon.AppendUint(pt, uint64(fl.Scale))
		pt = canon.AppendUint(pt, uint64(fl.Bands))
		if err := dw.Floats(fmt.Sprintf("pyr%d", l), fl.Vals()); err != nil {
			return err
		}
	}
	if err := dw.Raw("pyr", pt); err != nil {
		return err
	}
	if err := dw.Floats("feat", ss.feat); err != nil {
		return err
	}
	return dw.Close()
}

func restoreScene(dr *segment.DatasetReader, shards int) (*sceneSet, error) {
	pt, err := dr.Raw("pyr")
	if err != nil {
		return nil, err
	}
	r := canon.NewReader(pt)
	if err := r.Expect("PY"); err != nil {
		return nil, fmt.Errorf("%w: pyramid table tag", segment.ErrCorrupt)
	}
	nbands, err := r.Count(8)
	if err != nil || nbands < 1 {
		return nil, fmt.Errorf("%w: pyramid band count", segment.ErrCorrupt)
	}
	names := make([]string, nbands)
	for b := range names {
		if names[b], err = r.String(); err != nil {
			return nil, fmt.Errorf("%w: pyramid band name %d", segment.ErrCorrupt, b)
		}
	}
	nlevels, err := r.Count(32) // 4 uints per level
	if err != nil || nlevels < 1 {
		return nil, fmt.Errorf("%w: pyramid level count", segment.ErrCorrupt)
	}
	levels := make([]pyramid.FlatLevel, nlevels)
	for l := 0; l < nlevels; l++ {
		wd, err1 := r.Uint()
		ht, err2 := r.Uint()
		scale, err3 := r.Uint()
		bands, err4 := r.Uint()
		if err := firstErr(err1, err2, err3, err4); err != nil {
			return nil, fmt.Errorf("%w: pyramid level %d geometry", segment.ErrCorrupt, l)
		}
		vals, err := dr.Floats(fmt.Sprintf("pyr%d", l))
		if err != nil {
			return nil, err
		}
		fl, err := pyramid.FlatFromVals(int(wd), int(ht), int(scale), int(bands), vals)
		if err != nil {
			return nil, fmt.Errorf("%w: level %d: %v", segment.ErrCorrupt, l, err)
		}
		levels[l] = fl
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing pyramid table", segment.ErrCorrupt)
	}
	mp, err := pyramid.FromFlat(names, levels)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", segment.ErrCorrupt, err)
	}
	meta, err := dr.Raw("meta")
	if err != nil {
		return nil, err
	}
	sc, err := archive.SceneFromParts(bytes.NewReader(meta), mp)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", segment.ErrCorrupt, err)
	}
	if len(sc.Tiles) != dr.Rows() {
		return nil, fmt.Errorf("%w: scene has %d tiles, manifest says %d rows", segment.ErrCorrupt, len(sc.Tiles), dr.Rows())
	}
	feat, err := dr.Floats("feat")
	if err != nil {
		return nil, err
	}
	ss, err := restoredSceneSet(sc, feat, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", segment.ErrCorrupt, err)
	}
	return ss, nil
}

// ---- series ----

func snapSeries(w *segment.Writer, info DatasetInfo, ss *seriesSet) error {
	dw, err := w.Dataset(info.Name, kindSeries, info.Rows)
	if err != nil {
		return err
	}
	meta := []byte("SS")
	meta = canon.AppendUint(meta, uint64(info.Rows))
	var events []fsm.Event
	for _, sh := range ss.scan {
		for i := range sh.regions {
			meta = canon.AppendUint(meta, uint64(int64(sh.regions[i].Region)))
			meta = canon.AppendUint(meta, uint64(sh.sums[i].MaxDrySpell))
			meta = canon.AppendUint(meta, uint64(sh.sums[i].RainDays))
			meta = canon.AppendFloat(meta, sh.sums[i].MaxTempAfterDry3)
			meta = canon.AppendUint(meta, uint64(sh.evOff[i+1]-sh.evOff[i]))
		}
		events = append(events, sh.events...)
	}
	if err := firstErr(
		dw.Raw("meta", meta),
		dw.Ints("events", fsm.EncodeEvents(events)),
	); err != nil {
		return err
	}
	return dw.Close()
}

func restoreSeries(dr *segment.DatasetReader, shards int) (*seriesSet, error) {
	meta, err := dr.Raw("meta")
	if err != nil {
		return nil, err
	}
	r := canon.NewReader(meta)
	if err := r.Expect("SS"); err != nil {
		return nil, fmt.Errorf("%w: series meta tag", segment.ErrCorrupt)
	}
	n, err := r.Count(40) // 4 uints + 1 float per region
	if err != nil {
		return nil, fmt.Errorf("%w: series region count", segment.ErrCorrupt)
	}
	if n != dr.Rows() {
		return nil, fmt.Errorf("%w: series meta has %d regions, manifest says %d", segment.ErrCorrupt, n, dr.Rows())
	}
	ids := make([]int, n)
	sums := make([]synth.DrySpellStats, n)
	days := make([]int, n)
	for i := 0; i < n; i++ {
		id, err1 := r.Uint()
		maxDry, err2 := r.Uint()
		rainDays, err3 := r.Uint()
		maxTemp, err4 := r.Float()
		d, err5 := r.Uint()
		if err := firstErr(err1, err2, err3, err4, err5); err != nil {
			return nil, fmt.Errorf("%w: series meta region %d", segment.ErrCorrupt, i)
		}
		ids[i] = int(int64(id))
		sums[i] = synth.DrySpellStats{
			MaxDrySpell:      int(maxDry),
			RainDays:         int(rainDays),
			MaxTempAfterDry3: maxTemp,
		}
		days[i] = int(d)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing series meta", segment.ErrCorrupt)
	}
	evCol, err := dr.Ints("events")
	if err != nil {
		return nil, err
	}
	ss, err := restoredSeriesSet(ids, sums, fsm.DecodeEvents(evCol), days, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", segment.ErrCorrupt, err)
	}
	return ss, nil
}

// ---- wells ----

func snapWells(w *segment.Writer, info DatasetInfo, ws *wellSet) error {
	dw, err := w.Dataset(info.Name, kindWells, info.Rows)
	if err != nil {
		return err
	}
	meta := []byte("WS")
	meta = canon.AppendUint(meta, uint64(info.Rows))
	var lith []int64
	var topFt, thickFt, gamma []float64
	for _, sh := range ws.scan {
		for i := range sh.wells {
			meta = canon.AppendUint(meta, uint64(int64(sh.wells[i].Well)))
			meta = canon.AppendUint(meta, uint64(sh.strataLen(i)))
		}
		for _, l := range sh.lith {
			lith = append(lith, int64(l))
		}
		topFt = append(topFt, sh.topFt...)
		thickFt = append(thickFt, sh.thickFt...)
		gamma = append(gamma, sh.gamma...)
	}
	if err := firstErr(
		dw.Raw("meta", meta),
		dw.Ints("lith", lith),
		dw.Floats("topft", topFt),
		dw.Floats("thickft", thickFt),
		dw.Floats("gamma", gamma),
	); err != nil {
		return err
	}
	return dw.Close()
}

func restoreWells(dr *segment.DatasetReader, shards int) (*wellSet, error) {
	meta, err := dr.Raw("meta")
	if err != nil {
		return nil, err
	}
	r := canon.NewReader(meta)
	if err := r.Expect("WS"); err != nil {
		return nil, fmt.Errorf("%w: well meta tag", segment.ErrCorrupt)
	}
	n, err := r.Count(16) // 2 uints per well
	if err != nil {
		return nil, fmt.Errorf("%w: well count", segment.ErrCorrupt)
	}
	if n != dr.Rows() {
		return nil, fmt.Errorf("%w: well meta has %d wells, manifest says %d", segment.ErrCorrupt, n, dr.Rows())
	}
	ids := make([]int, n)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		id, err1 := r.Uint()
		c, err2 := r.Uint()
		if err := firstErr(err1, err2); err != nil {
			return nil, fmt.Errorf("%w: well meta %d", segment.ErrCorrupt, i)
		}
		ids[i] = int(int64(id))
		counts[i] = int(c)
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("%w: trailing well meta", segment.ErrCorrupt)
	}
	lithCol, err := dr.Ints("lith")
	if err != nil {
		return nil, err
	}
	lith := make([]synth.Lithology, len(lithCol))
	for i, v := range lithCol {
		lith[i] = synth.Lithology(v)
	}
	var topFt, thickFt, gamma []float64
	if err := firstErr(
		readF64(dr, "topft", &topFt),
		readF64(dr, "thickft", &thickFt),
		readF64(dr, "gamma", &gamma),
	); err != nil {
		return nil, err
	}
	ws, err := restoredWellSet(ids, counts, lith, topFt, thickFt, gamma, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", segment.ErrCorrupt, err)
	}
	return ws, nil
}

// ---- small helpers ----

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func firstErr(errs ...error) error {
	return errors.Join(errs...)
}

func intsToI64(s []int) []int64 {
	out := make([]int64, len(s))
	for i, v := range s {
		out[i] = int64(v)
	}
	return out
}

func i64ToInts(s []int64) []int {
	out := make([]int, len(s))
	for i, v := range s {
		out[i] = int(v)
	}
	return out
}

func readF64(dr *segment.DatasetReader, name string, dst *[]float64) error {
	v, err := dr.Floats(name)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}

func readI64(dr *segment.DatasetReader, name string, dst *[]int64) error {
	v, err := dr.Ints(name)
	if err != nil {
		return err
	}
	*dst = v
	return nil
}
