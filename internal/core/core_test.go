package core

import (
	"math"
	"testing"

	"modelir/internal/archive"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/synth"
)

func engineWithTuples(t *testing.T) (*Engine, [][]float64) {
	t.Helper()
	e := NewEngine()
	pts, err := synth.GaussianTuples(3, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddTuples("gauss", pts); err != nil {
		t.Fatal(err)
	}
	return e, pts
}

func TestRegistrationErrors(t *testing.T) {
	e := NewEngine()
	if err := e.AddTuples("x", nil); err == nil {
		t.Fatal("want empty tuples error")
	}
	pts, _ := synth.GaussianTuples(1, 10, 2)
	if err := e.AddTuples("x", pts); err != nil {
		t.Fatal(err)
	}
	if err := e.AddTuples("x", pts); err == nil {
		t.Fatal("want duplicate error")
	}
	if err := e.AddScene("s", nil); err == nil {
		t.Fatal("want nil scene error")
	}
	if err := e.AddSeries("w", nil); err == nil {
		t.Fatal("want empty series error")
	}
	if err := e.AddWells("g", nil); err == nil {
		t.Fatal("want empty wells error")
	}
	if _, err := e.Scene("missing"); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestModelKindString(t *testing.T) {
	if KindLinear.String() != "linear" || KindFiniteState.String() != "finite-state" ||
		KindKnowledge.String() != "knowledge" || ModelKind(0).String() != "unknown" {
		t.Fatal("kind names wrong")
	}
}

func TestLinearTopKTuples(t *testing.T) {
	e, pts := engineWithTuples(t)
	m, err := linear.New([]string{"a", "b", "c"}, []float64{1, -0.5, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	items, st, err := e.LinearTopKTuples("gauss", m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("got %d items", len(items))
	}
	// Verify against direct evaluation, including the intercept shift.
	bestID, bestScore := -1, math.Inf(-1)
	for i, p := range pts {
		s, _ := m.Eval(p)
		if s > bestScore {
			bestID, bestScore = i, s
		}
	}
	if items[0].ID != int64(bestID) || math.Abs(items[0].Score-bestScore) > 1e-12 {
		t.Fatalf("top item %d/%v want %d/%v", items[0].ID, items[0].Score, bestID, bestScore)
	}
	if st.Indexed.PointsTouched >= st.ScanCost {
		t.Fatalf("index touched %d >= scan %d", st.Indexed.PointsTouched, st.ScanCost)
	}
	// Cached index reused on second query.
	if _, _, err := e.LinearTopKTuples("gauss", m, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.LinearTopKTuples("missing", m, 1); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestSceneTopK(t *testing.T) {
	e := NewEngine()
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 4, W: 64, H: 64})
	if err != nil {
		t.Fatal(err)
	}
	ar, err := archive.BuildScene("s", sc.Bands, archive.Options{TileSize: 16, PyramidLevels: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddScene("hps", ar); err != nil {
		t.Fatal(err)
	}
	pm, err := linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	items, st, err := e.SceneTopK("hps", pm, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("items=%d", len(items))
	}
	if st.Work() == 0 {
		t.Fatal("no work recorded")
	}
	if _, _, err := e.SceneTopK("missing", pm, 1); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestFSMTopKWithPruning(t *testing.T) {
	e := NewEngine()
	arch, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 6, Regions: 40, Days: 365})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("weather", arch); err != nil {
		t.Fatal(err)
	}
	m := fsm.FireAnts()

	base, baseSt, err := e.FSMTopK("weather", m, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, prunedSt, err := e.FSMTopK("weather", m, 10, FireAntsPrefilter)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(pruned) {
		t.Fatalf("result sizes differ: %d vs %d", len(base), len(pruned))
	}
	for i := range base {
		if base[i].ID != pruned[i].ID || base[i].Score != pruned[i].Score {
			t.Fatalf("pruning changed results at %d: %+v vs %+v", i, base[i], pruned[i])
		}
	}
	if prunedSt.DaysScanned > baseSt.DaysScanned {
		t.Fatal("pruning increased scan work")
	}
	if baseSt.RegionsTotal != 40 {
		t.Fatalf("regions total %d", baseSt.RegionsTotal)
	}
	if _, _, err := e.FSMTopK("missing", m, 1, nil); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestFSMDistanceRank(t *testing.T) {
	e := NewEngine()
	arch, err := synth.WeatherArchive(synth.WeatherConfig{Seed: 7, Regions: 10, Days: 400})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddSeries("weather", arch); err != nil {
		t.Fatal(err)
	}
	items, err := e.FSMDistanceRank("weather", fsm.FireAnts(), 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 5 {
		t.Fatalf("items=%d", len(items))
	}
	// Data consistent with the reference machine extracts the reference
	// exactly, so every region scores 1.
	for _, it := range items {
		if it.Score != 1 {
			t.Fatalf("region %d score %v want 1", it.ID, it.Score)
		}
	}
	if _, err := e.FSMDistanceRank("missing", fsm.FireAnts(), 1, 5); err == nil {
		t.Fatal("want unknown dataset error")
	}
}

func TestGeologyTopKFindsPlantedWells(t *testing.T) {
	e := NewEngine()
	wells, planted, err := synth.WellArchive(synth.WellConfig{Seed: 8, Wells: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddWells("basin", wells); err != nil {
		t.Fatal(err)
	}
	q := GeologyQuery{
		Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
		MaxGapFt: 10,
		MinGamma: 45,
	}
	// Natural shale/sandstone/siltstone sequences can also score 1, so
	// retrieve every well to check the planted ones are all present.
	k := len(wells)

	dp, dpSt, err := e.GeologyTopK("basin", q, k, GeoDP)
	if err != nil {
		t.Fatal(err)
	}
	pruned, prSt, err := e.GeologyTopK("basin", q, k, GeoPruned)
	if err != nil {
		t.Fatal(err)
	}
	if len(dp) != len(pruned) {
		t.Fatalf("dp %d vs pruned %d wells", len(dp), len(pruned))
	}
	for i := range dp {
		if dp[i].Well != pruned[i].Well || math.Abs(dp[i].Score-pruned[i].Score) > 1e-12 {
			t.Fatalf("method mismatch at %d: %+v vs %+v", i, dp[i], pruned[i])
		}
	}
	// Every planted well must be retrieved with a perfect score.
	found := make(map[int]bool)
	for _, m := range dp {
		if m.Score == 1 {
			found[m.Well] = true
		}
	}
	for _, w := range planted {
		if !found[w] {
			t.Fatalf("planted well %d not retrieved at score 1", w)
		}
	}
	// Retrieved strata must actually satisfy the oracle.
	for _, m := range dp {
		if m.Score == 1 && !synth.HasRiverbedSignature(wells[m.Well], q.MaxGapFt, q.MinGamma) {
			t.Fatalf("well %d scored 1 but fails the oracle", m.Well)
		}
	}
	if prSt.PairEvals > dpSt.PairEvals {
		t.Fatal("pruned method did more pair work than DP")
	}
}

func TestGeologyValidation(t *testing.T) {
	e := NewEngine()
	wells, _, _ := synth.WellArchive(synth.WellConfig{Seed: 9, Wells: 5})
	if err := e.AddWells("b", wells); err != nil {
		t.Fatal(err)
	}
	bad := GeologyQuery{}
	if _, _, err := e.GeologyTopK("b", bad, 1, GeoDP); err == nil {
		t.Fatal("want empty sequence error")
	}
	q := GeologyQuery{Sequence: []synth.Lithology{synth.Shale}, MaxGapFt: -1}
	if _, _, err := e.GeologyTopK("b", q, 1, GeoDP); err == nil {
		t.Fatal("want negative gap error")
	}
	ok := GeologyQuery{Sequence: []synth.Lithology{synth.Shale}, MinGamma: 45}
	if _, _, err := e.GeologyTopK("missing", ok, 1, GeoDP); err == nil {
		t.Fatal("want unknown dataset error")
	}
	if _, _, err := e.GeologyTopK("b", ok, 1, GeologyMethod(99)); err == nil {
		t.Fatal("want unknown method error")
	}
}

func TestWorkflowFig5(t *testing.T) {
	wf, err := NewWorkflow([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWorkflow(nil); err == nil {
		t.Fatal("want attrs error")
	}
	// Hypothesize an expert model (step 1).
	hyp, _ := linear.New([]string{"a", "b"}, []float64{1, 1}, 0)
	if err := wf.Hypothesize(hyp); err != nil {
		t.Fatal(err)
	}
	badHyp, _ := linear.New([]string{"a"}, []float64{1}, 0)
	if err := wf.Hypothesize(badHyp); err == nil {
		t.Fatal("want shape error")
	}
	// True model: y = 2a - b + 1.
	gen := func(n int, seed int64) ([][]float64, []float64) {
		xs := make([][]float64, n)
		ys := make([]float64, n)
		s := seed
		for i := range xs {
			s = s*6364136223846793005 + 1442695040888963407
			a := float64(s%1000)/500 - 1
			s = s*6364136223846793005 + 1442695040888963407
			b := float64(s%1000)/500 - 1
			xs[i] = []float64{a, b}
			ys[i] = 2*a - b + 1
		}
		return xs, ys
	}
	xs, ys := gen(50, 1)
	m, err := wf.Calibrate(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coeffs[0]-2) > 0.01 || math.Abs(m.Coeffs[1]+1) > 0.01 {
		t.Fatalf("calibrated coeffs %v", m.Coeffs)
	}
	// Revise with more data (step 4): still consistent, refit sharpens.
	xs2, ys2 := gen(100, 99)
	m2, err := wf.Revise(xs2, ys2)
	if err != nil {
		t.Fatal(err)
	}
	if wf.TrainingSize() != 150 || wf.Revisions != 2 {
		t.Fatalf("training=%d revisions=%d", wf.TrainingSize(), wf.Revisions)
	}
	if math.Abs(m2.Intercept-1) > 0.01 {
		t.Fatalf("revised intercept %v", m2.Intercept)
	}
	if wf.Model() != m2 {
		t.Fatal("Model() stale")
	}
	// Revise-before-calibrate on a fresh workflow errors.
	wf2, _ := NewWorkflow([]string{"a"})
	if _, err := wf2.Revise([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("want revise-before-calibrate error")
	}
	if _, err := wf.Calibrate(nil, nil); err == nil {
		t.Fatal("want bad rows error")
	}
	if _, err := wf.Revise([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("want row shape error")
	}
}
