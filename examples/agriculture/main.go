// Precision agriculture (Section 1's fourth scenario): site-specific
// crop monitoring over a multiband scene. A vegetation-vigor model is
// fit from field samples (Fig. 5 calibration), the scene is classified
// into cover types progressively, vigor contours locate stressed
// patches rapidly at the features abstraction level, and spatial
// moments summarize each patch for the agronomist.
package main

import (
	"fmt"
	"log"

	"modelir"
	"modelir/internal/bayes"
	"modelir/internal/features"
	"modelir/internal/progressive"
	"modelir/internal/pyramid"
	"modelir/internal/raster"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	scene, err := modelir.GenerateScene(modelir.SceneConfig{Seed: 17, W: 256, H: 256})
	if err != nil {
		return err
	}

	// 1. Calibrate a crop-vigor model from "field samples": vigor is
	//    driven by vegetation and moisture, observed through the bands.
	var xs [][]float64
	var ys []float64
	for y := 0; y < 256; y += 8 {
		for x := 0; x < 256; x += 8 {
			xs = append(xs, scene.Bands.Pixel(x, y, nil))
			ys = append(ys, 100*scene.Vegetation.At(x, y)*(0.5+0.5*scene.Moisture.At(x, y)))
		}
	}
	wf, err := modelir.NewWorkflow(scene.Bands.BandNames())
	if err != nil {
		return err
	}
	vigor, err := wf.Calibrate(xs, ys)
	if err != nil {
		return err
	}
	r2, err := vigor.RSquared(xs, ys)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated vigor model (R² = %.3f): %s\n", r2, vigor)

	// 2. Materialize the vigor surface and extract the stress contour —
	//    the cheap features-level product Section 3.1 describes as
	//    "allowing for very rapid identification of areas with low or
	//    high parameter values".
	mp, err := pyramid.BuildMultiband(scene.Bands, 5)
	if err != nil {
		return err
	}
	surface, err := progressive.RiskSurface(vigor, mp)
	if err != nil {
		return err
	}
	mean, std := surface.Stats()
	stressLevel := mean - std
	contour := features.Contour(surface, stressLevel)
	fmt.Printf("stress contour (vigor < %.1f): %d boundary cells\n", stressLevel, len(contour))

	// 3. Summarize the stressed area with spatial moments: where is the
	//    worst patch and how elongated is it?
	deficit := surface.Clone()
	deficit.Apply(func(v float64) float64 {
		if v < stressLevel {
			return stressLevel - v
		}
		return 0
	})
	m := features.ComputeMoments(deficit, deficit.Bounds())
	fmt.Printf("stress deficit: mass %.0f, centroid (%.0f, %.0f), spread (%.0f, %.0f)\n",
		m.Mass, m.Cx, m.Cy, m.Mxx, m.Myy)

	// 4. Progressive cover classification for management zones.
	var cxs [][]float64
	var labels []int
	classOf := func(x, y int) int {
		switch {
		case scene.Vegetation.At(x, y) > 0.6:
			return 2 // dense crop
		case scene.Vegetation.At(x, y) > 0.3:
			return 1 // sparse crop
		default:
			return 0 // bare soil
		}
	}
	for y := 0; y < 256; y += 4 {
		for x := 0; x < 256; x += 4 {
			cxs = append(cxs, scene.Bands.Pixel(x, y, nil))
			labels = append(labels, classOf(x, y))
		}
	}
	gnb, err := bayes.TrainGNB(3, cxs, labels)
	if err != nil {
		return err
	}
	cover, st, err := gnb.ClassifyProgressiveOpts(mp, bayes.ProgressiveOptions{
		MarginThreshold: 2, MaxRange: 100,
	})
	if err != nil {
		return err
	}
	counts := map[int]int{}
	for _, v := range cover.Data() {
		counts[int(v)]++
	}
	total := float64(cover.Len())
	fmt.Printf("cover map (%d classifier calls for %d pixels): bare %.0f%%, sparse %.0f%%, dense %.0f%%\n",
		st.TotalEvals(), cover.Len(),
		100*float64(counts[0])/total, 100*float64(counts[1])/total, 100*float64(counts[2])/total)

	// 5. Top harvest-ready zones: tile-level mean vigor ranking.
	tiles := surface.Tiles(32)
	type zone struct {
		r raster.Rect
		v float64
	}
	best := zone{v: -1}
	for _, tile := range tiles {
		if v := surface.SubMean(tile); v > best.v {
			best = zone{r: tile, v: v}
		}
	}
	fmt.Printf("harvest first: tile (%d,%d)-(%d,%d), mean vigor %.1f\n",
		best.r.X0, best.r.Y0, best.r.X1, best.r.Y1, best.v)
	return nil
}
