// Credit scoring (Section 2.1's FICO example): a linear scoring model
// over a tuple archive of applicant attribute vectors, retrieved
// through the unified Engine.Run API. The model is minimized (find the
// riskiest applicants) by negating the weights, a MinScore floor keeps
// only prime-band files, and the Fig. 5 workflow refits the model from
// observed foreclosure outcomes.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"modelir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := modelir.CreditScoreModel()
	nAttrs := model.NumTerms()

	// Synthetic applicant pool: correlated severities in [0,1].
	rng := rand.New(rand.NewSource(33))
	applicants := make([][]float64, 50_000)
	for i := range applicants {
		base := rng.Float64() * 0.6 // overall credit quality factor
		row := make([]float64, nAttrs)
		for j := range row {
			v := base + rng.NormFloat64()*0.15
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			row[j] = v
		}
		applicants[i] = row
	}

	engine := modelir.NewEngine()
	if err := engine.AddTuples("applicants", applicants); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Highest scores: negate nothing — the model's coefficients are
	// already negative penalties, so maximizing finds the cleanest
	// files. The MinScore floor keeps prime-band files (>= 680) only.
	prime := 680.0
	best, err := engine.Run(ctx, modelir.Request{
		Dataset:  "applicants",
		Query:    modelir.LinearQuery{Model: model},
		K:        5,
		MinScore: &prime,
	})
	if err != nil {
		return err
	}
	fmt.Println("5 best credit files (prime band only):")
	for i, it := range best.Items {
		band, err := bandOf(it.Score)
		if err != nil {
			return err
		}
		fmt.Printf("  %d. applicant %5d  score %.0f (%s)  P[foreclose] %.2f%%\n",
			i+1, it.ID, it.Score, band, 100*modelir.ForeclosureProbability(it.Score))
	}
	fmt.Printf("  (%s query examined %d of %d applicants in %v)\n",
		best.Stats.Kind, best.Stats.Examined, best.Stats.Examined+best.Stats.Pruned,
		best.Stats.Wall.Round(time.Microsecond))

	// Riskiest applicants: minimize the score by negating the weights.
	neg := make([]float64, nAttrs)
	for i, c := range model.Coeffs {
		neg[i] = -c
	}
	inverse, err := modelir.NewLinearModel(model.Attrs, neg, -model.Intercept)
	if err != nil {
		return err
	}
	worst, err := engine.Run(ctx, modelir.Request{
		Dataset: "applicants",
		Query:   modelir.LinearQuery{Model: inverse},
		K:       5,
	})
	if err != nil {
		return err
	}
	fmt.Println("\n5 riskiest credit files:")
	for i, it := range worst.Items {
		score := -it.Score // undo the negation
		band, err := bandOf(score)
		if err != nil {
			return err
		}
		fmt.Printf("  %d. applicant %5d  score %.0f (%s)  P[foreclose] %.2f%%\n",
			i+1, it.ID, score, band, 100*modelir.ForeclosureProbability(score))
	}

	// Fig. 5 workflow: refit the scoring weights from observed outcomes.
	wf, err := modelir.NewWorkflow(model.Attrs)
	if err != nil {
		return err
	}
	xs := applicants[:2000]
	ys := make([]float64, len(xs))
	for i, x := range xs {
		s, err := model.Eval(x)
		if err != nil {
			return err
		}
		ys[i] = s + rng.NormFloat64()*5 // observed score with bureau noise
	}
	refit, err := wf.Calibrate(xs, ys)
	if err != nil {
		return err
	}
	fmt.Printf("\nworkflow refit from %d outcomes: intercept %.1f (true 900.0), "+
		"late-90d weight %.1f (true %.1f)\n",
		wf.TrainingSize(), refit.Intercept, refit.Coeffs[1], model.Coeffs[1])
	return nil
}

func bandOf(score float64) (string, error) {
	switch {
	case score >= 680:
		return "prime", nil
	case score >= 620:
		return "near-prime", nil
	case score >= 300:
		return "subprime", nil
	default:
		return "", fmt.Errorf("score %v out of range", score)
	}
}
