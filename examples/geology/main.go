// Oil/gas exploration (Fig. 4): a knowledge-model query over a well-log
// archive — find wells whose strata show shale on top of sandstone on
// top of siltstone, adjacent within 10 ft, with gamma-ray response above
// 45 API. The composite query runs through SPROC's dynamic-programming
// pruning and is validated against the brute-force oracle.
package main

import (
	"context"
	"fmt"
	"log"

	"modelir"
	"modelir/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wells, planted, err := modelir.GenerateWells(modelir.WellConfig{Seed: 21, Wells: 300})
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddWells("basin", wells); err != nil {
		return err
	}

	query := modelir.GeologyQuery{
		Sequence:     []modelir.Lithology{modelir.Shale, modelir.Sandstone, modelir.Siltstone},
		MaxGapFt:     10,
		MinGamma:     45,
		GammaRampAPI: 5, // fuzzy edge: 40 API grades 0, 50 API grades 1
	}

	ctx := context.Background()
	query.Method = modelir.GeoDP
	dp, err := engine.Run(ctx, modelir.Request{Dataset: "basin", Query: query, K: 10})
	if err != nil {
		return err
	}
	matches, err := modelir.WellMatches(dp.Items)
	if err != nil {
		return err
	}
	fmt.Println("top-10 riverbed candidates (shale/sandstone/siltstone, gamma > 45):")
	for i, m := range matches {
		s := wells[m.Well].Strata[m.Strata[0]]
		fmt.Printf("  %2d. well %3d  score %.3f  top of sequence at %.0f ft\n",
			i+1, m.Well, m.Score, s.TopFt)
	}

	// Work comparison across evaluators (Stats.Evaluations counts
	// unary+pair grades; the pruned evaluator does strictly less).
	query.Method = modelir.GeoPruned
	pruned, err := engine.Run(ctx, modelir.Request{Dataset: "basin", Query: query, K: 10})
	if err != nil {
		return err
	}
	fmt.Printf("\nfuzzy-grade evaluations: DP %d, pruned %d (%.1fx less)\n",
		dp.Stats.Evaluations, pruned.Stats.Evaluations,
		float64(dp.Stats.Evaluations)/float64(pruned.Stats.Evaluations))

	// Validation against the oracle on the planted ground truth. A
	// MinScore floor retrieves exactly the full-score wells.
	found := 0
	retrieved := make(map[int]bool, len(matches))
	fullScore := 0.999
	query.Method = modelir.GeoDP
	allRes, err := engine.Run(ctx, modelir.Request{
		Dataset: "basin", Query: query, K: len(wells), MinScore: &fullScore,
	})
	if err != nil {
		return err
	}
	all, err := modelir.WellMatches(allRes.Items)
	if err != nil {
		return err
	}
	for _, m := range all {
		if m.Score >= 0.999 {
			retrieved[m.Well] = true
		}
	}
	for _, w := range planted {
		if retrieved[w] && synth.HasRiverbedSignature(wells[w], query.MaxGapFt, query.MinGamma) {
			found++
		}
	}
	fmt.Printf("ground truth: %d/%d planted riverbed wells retrieved at full score\n",
		found, len(planted))
	return nil
}
