// Quickstart: build a tuple archive, pose a linear model query, and
// compare the Onion-indexed retrieval against a sequential scan — the
// smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"modelir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A synthetic archive: 100k three-attribute Gaussian tuples (the
	//    workload the paper's Onion speedups were measured on).
	points, err := modelir.GenerateTuples(42, 100_000, 3)
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddTuples("demo", points); err != nil {
		return err
	}

	// 2. The query is a model, not a template: maximize a weighted
	//    combination of the three attributes.
	model, err := modelir.NewLinearModel(
		[]string{"x1", "x2", "x3"},
		[]float64{0.443, 0.222, 0.153},
		0,
	)
	if err != nil {
		return err
	}

	// 3. Top-10 retrieval through the model-specific index.
	top, stats, err := engine.LinearTopKTuples("demo", model, 10)
	if err != nil {
		return err
	}

	fmt.Println("top-10 tuples maximizing the model:")
	for i, it := range top {
		p := points[it.ID]
		fmt.Printf("  %2d. tuple %6d  score %.4f  (%.3f, %.3f, %.3f)\n",
			i+1, it.ID, it.Score, p[0], p[1], p[2])
	}
	fmt.Printf("\nwork: Onion touched %d of %d points (%d layers) — %.0fx fewer than a scan\n",
		stats.Indexed.PointsTouched, stats.ScanCost, stats.Indexed.LayersScanned,
		float64(stats.ScanCost)/float64(stats.Indexed.PointsTouched))
	return nil
}
