// Quickstart: build a tuple archive, pose a linear model query through
// the unified Engine.Run entry point, and watch the same query stream
// progressive snapshots — the smallest end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"modelir"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A synthetic archive: 100k three-attribute Gaussian tuples (the
	//    workload the paper's Onion speedups were measured on).
	points, err := modelir.GenerateTuples(42, 100_000, 3)
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddTuples("demo", points); err != nil {
		return err
	}

	// 2. The query is a model, not a template: maximize a weighted
	//    combination of the three attributes.
	model, err := modelir.NewLinearModel(
		[]string{"x1", "x2", "x3"},
		[]float64{0.443, 0.222, 0.153},
		0,
	)
	if err != nil {
		return err
	}

	// 3. Top-10 retrieval through the unified request API: one entry
	//    point for every model family, with a deadline attached.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	res, err := engine.Run(ctx, modelir.Request{
		Dataset: "demo",
		Query:   modelir.LinearQuery{Model: model},
		K:       10,
	})
	if err != nil {
		return err
	}

	fmt.Println("top-10 tuples maximizing the model:")
	for i, it := range res.Items {
		p := points[it.ID]
		fmt.Printf("  %2d. tuple %6d  score %.4f  (%.3f, %.3f, %.3f)\n",
			i+1, it.ID, it.Score, p[0], p[1], p[2])
	}
	st := res.Stats
	fmt.Printf("\nwork: %s query evaluated %d of %d candidates across %d shards in %v — %.0fx fewer than a scan\n",
		st.Kind, st.Examined, st.Examined+st.Pruned, st.Shards, st.Wall.Round(time.Microsecond),
		float64(st.Examined+st.Pruned)/float64(st.Examined))

	// 4. The same request, delivered progressively: snapshots improve
	//    monotonically as Onion layers complete, ending with the exact
	//    final answer.
	ch, err := engine.RunProgressive(ctx, modelir.Request{
		Dataset: "demo",
		Query:   modelir.LinearQuery{Model: model},
		K:       10,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nprogressive delivery:")
	for snap := range ch {
		if snap.Err != nil {
			return snap.Err
		}
		tag := fmt.Sprintf("%s %d", snap.Stage, snap.Level)
		if snap.Final {
			tag = "final"
		}
		fmt.Printf("  snapshot %d (%s): best %.4f, %d items\n",
			snap.Seq, tag, snap.Items[0].Score, len(snap.Items))
	}
	return nil
}
