// Environmental epidemiology end-to-end: the paper's Hantavirus
// Pulmonary Syndrome scenario. A Landsat-like scene plus DEM is archived
// progressively; the HPS risk model R = 0.443·b4 + 0.222·b5 + 0.153·b7 +
// 0.183·elev is decomposed into a progressive model; top-K high-risk
// locations are retrieved with combined progressive execution; and the
// Section 4.1 accuracy metrics are reported against a synthetic outbreak
// ground truth.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"modelir"
	"modelir/internal/progressive"
	"modelir/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Acquire the multi-modal scene (substitute for Landsat TM + DEM).
	scene, err := modelir.GenerateScene(modelir.SceneConfig{Seed: 7, W: 512, H: 512})
	if err != nil {
		return err
	}
	arch, err := modelir.BuildSceneArchive("hps-region", scene.Bands, modelir.ArchiveOptions{
		TileSize: 32, PyramidLevels: 6,
	})
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddScene("hps-region", arch); err != nil {
		return err
	}

	// 2. The HPS risk model, decomposed by term contribution over the
	//    band value ranges (2-term coarse level, 4-term exact level).
	model := modelir.HPSRiskModel()
	prog, err := modelir.DecomposeLinear(model,
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		return err
	}

	// 3. Retrieve the 20 highest-risk locations through the unified
	//    request API, with a deadline bounding the scan.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := engine.Run(ctx, modelir.Request{
		Dataset: "hps-region",
		Query:   modelir.SceneQuery{Model: prog},
		K:       20,
	})
	if err != nil {
		return err
	}
	fmt.Println("top-20 HPS risk locations (x, y, R):")
	for i, it := range res.Items {
		x, y := int(it.ID)%arch.W, int(it.ID)/arch.W
		fmt.Printf("  %2d. (%3d,%3d)  R = %.2f\n", i+1, x, y, it.Score)
	}
	flatWork := arch.W * arch.H * model.NumTerms()
	fmt.Printf("\nwork: %d term evaluations vs %d flat (%.1fx speedup) in %v\n",
		res.Stats.Evaluations, flatWork, float64(flatWork)/float64(res.Stats.Evaluations),
		res.Stats.Wall.Round(time.Millisecond))

	// 4. Accuracy against a synthetic outbreak (Section 4.1): risk
	//    surface -> threshold sweep -> CT and precision/recall@K.
	surface, err := progressive.RiskSurface(model, arch.Pyramid())
	if err != nil {
		return err
	}
	// Ground truth occurrences correlate with the scene's latent
	// moisture/vegetation structure via the true risk surface.
	norm := surface.Clone()
	lo, hi := norm.MinMax()
	norm.Apply(func(v float64) float64 { return (v - lo) / (hi - lo) })
	occ, err := synth.Outbreak(synth.OutbreakConfig{Seed: 8, BaseRate: -3}, norm)
	if err != nil {
		return err
	}
	weights, err := synth.PopulationWeights(9, arch.W, arch.H)
	if err != nil {
		return err
	}
	sweep, err := modelir.SweepThresholds(surface, occ, weights,
		modelir.Costs{Miss: 10, FalseAlarm: 1}, 12)
	if err != nil {
		return err
	}
	fmt.Println("\nthreshold sweep (cm=10, cf=1):")
	fmt.Println("  T        Pm      Pf      CT")
	for _, p := range sweep {
		fmt.Printf("  %7.2f  %.3f  %.3f  %10.1f\n", p.Threshold, p.Pm, p.Pf, p.Cost)
	}
	pr, err := modelir.PrecisionRecallAtK(surface, occ, []int{10, 50, 100})
	if err != nil {
		return err
	}
	fmt.Println("\nprecision/recall of top-K retrieval:")
	for _, k := range []int{10, 50, 100} {
		fmt.Printf("  K=%-4d precision %.2f  recall %.4f\n", k, pr[k][0], pr[k][1])
	}
	return nil
}
