// Fire ants (Fig. 1): a finite-state model over a multi-region daily
// weather archive. A region's ants fly after rain, three or more dry
// days, and a day at or above 25°C. The example retrieves the top
// fly-risk regions, shows the metadata-level pruning win, and ranks a
// corrupted-sensor region by FSM distance.
//
// This example deliberately stays on the deprecated per-family methods
// (Engine.FSMTopK) as the compatibility demo: code written against the
// pre-Run API keeps compiling and returns results bit-identical to
// Engine.Run with an FSMQuery. New code should prefer Run — see
// examples/quickstart and examples/credit.
package main

import (
	"fmt"
	"log"

	"modelir"
	"modelir/internal/fsm"
	"modelir/internal/synth"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	archive, err := modelir.GenerateWeather(modelir.WeatherConfig{
		Seed: 11, Regions: 500, Days: 730,
	})
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddSeries("plains", archive); err != nil {
		return err
	}
	machine := modelir.FireAntsModel()

	// Baseline: run the machine over every region's full series.
	top, base, err := engine.FSMTopK("plains", machine, 10, nil)
	if err != nil {
		return err
	}
	fmt.Println("top-10 fire-ant fly-risk regions:")
	for i, it := range top {
		st := synth.SummarizeSeries(archive[it.ID])
		fmt.Printf("  %2d. region %3d  score %.3f  (max dry spell %d days)\n",
			i+1, it.ID, it.Score, st.MaxDrySpell)
	}

	// Metadata pruning: regions whose summaries prove a zero score are
	// skipped without scanning their days.
	_, pruned, err := engine.FSMTopK("plains", machine, 10, modelir.FireAntsPrefilter)
	if err != nil {
		return err
	}
	fmt.Printf("\nscan work: %d days flat, %d with metadata pruning (%d/%d regions skipped)\n",
		base.DaysScanned, pruned.DaysScanned, pruned.RegionsPruned, pruned.RegionsTotal)

	// FSM distance: a hypothetical competing model that flies after only
	// two dry days — how far is it behaviorally from Fig. 1?
	b := modelir.NewMachineBuilder(fsm.FireAntsAlphabet)
	rain := b.State("rain")
	dry1 := b.State("dry-1")
	fly := b.State("fly")
	b.Start(rain).Accept(fly)
	for _, s := range []int{rain, dry1, fly} {
		b.On(s, fsm.EvRain, rain)
	}
	b.On(rain, fsm.EvDryHot, dry1).On(rain, fsm.EvDryCold, dry1)
	b.On(dry1, fsm.EvDryHot, fly).On(dry1, fsm.EvDryCold, dry1)
	b.On(fly, fsm.EvDryHot, fly).On(fly, fsm.EvDryCold, fly)
	eager, err := b.Build()
	if err != nil {
		return err
	}
	d, err := modelir.MachineDistance(machine, eager, 14)
	if err != nil {
		return err
	}
	fmt.Printf("\nbehavioral distance(Fig.1, fly-after-2-dry-days) over 14-day windows: %.4f\n", d)
	return nil
}
