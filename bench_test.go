// Benchmarks regenerating the paper's evaluation, one family per
// experiment (E1-E9; see DESIGN.md §3). `go test -bench=. -benchmem`
// reports the micro-level costs; `go run ./cmd/benchtab` prints the
// corresponding tables with speedup ratios.
package modelir_test

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"modelir/internal/bayes"
	"modelir/internal/colstore"
	"modelir/internal/core"
	"modelir/internal/experiments"
	"modelir/internal/features"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/metrics"
	"modelir/internal/onion"
	"modelir/internal/parallel"
	"modelir/internal/progressive"
	"modelir/internal/pyramid"
	"modelir/internal/raster"
	"modelir/internal/rtree"
	"modelir/internal/sproc"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// ---- E1: Onion vs scan vs R-tree on 3-attr Gaussian tuples ----

var e1Data = sync.OnceValues(func() (struct {
	pts   [][]float64
	onion *onion.Index
	rtree *rtree.Tree
	ws    [][]float64
}, error) {
	var out struct {
		pts   [][]float64
		onion *onion.Index
		rtree *rtree.Tree
		ws    [][]float64
	}
	pts, err := synth.GaussianTuples(101, 50_000, 3)
	if err != nil {
		return out, err
	}
	ix, err := onion.Build(pts, onion.Options{})
	if err != nil {
		return out, err
	}
	rt, err := rtree.Build(pts, rtree.Options{})
	if err != nil {
		return out, err
	}
	rng := rand.New(rand.NewSource(5))
	ws := make([][]float64, 32)
	for i := range ws {
		ws[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	out.pts, out.onion, out.rtree, out.ws = pts, ix, rt, ws
	return out, nil
})

func benchOnionK(b *testing.B, k int) {
	d, err := e1Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.onion.TopK(d.ws[i&31], k); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1OnionTop1(b *testing.B)   { benchOnionK(b, 1) }
func BenchmarkE1OnionTop10(b *testing.B)  { benchOnionK(b, 10) }
func BenchmarkE1OnionTop100(b *testing.B) { benchOnionK(b, 100) }

func BenchmarkE1SequentialScanTop10(b *testing.B) {
	d, err := e1Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onion.ScanTopK(d.pts, d.ws[i&31], 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1RTreeTop10(b *testing.B) {
	d, err := e1Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.rtree.LinearTopK(d.ws[i&31], 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E2: progressive classification ----

var e2Data = sync.OnceValues(func() (struct {
	mb  *raster.Multiband
	gnb *bayes.GNB
	mp  *pyramid.MultibandPyramid
}, error) {
	var out struct {
		mb  *raster.Multiband
		gnb *bayes.GNB
		mp  *pyramid.MultibandPyramid
	}
	field, err := synth.SmoothField(31, 256, 256, 4)
	if err != nil {
		return out, err
	}
	sigs := [4][3]float64{{20, 15, 10}, {60, 140, 40}, {120, 180, 90}, {180, 90, 170}}
	rng := rand.New(rand.NewSource(32))
	bands := [3]*raster.Grid{
		raster.MustGrid(256, 256), raster.MustGrid(256, 256), raster.MustGrid(256, 256),
	}
	labelOf := func(x, y int) int {
		c := int(field.At(x, y) * 4)
		if c > 3 {
			c = 3
		}
		return c
	}
	for y := 0; y < 256; y++ {
		for x := 0; x < 256; x++ {
			c := labelOf(x, y)
			for bd := 0; bd < 3; bd++ {
				bands[bd].Set(x, y, sigs[c][bd]+rng.NormFloat64()*6)
			}
		}
	}
	mb, err := raster.Stack([]string{"b1", "b2", "b3"}, bands[0], bands[1], bands[2])
	if err != nil {
		return out, err
	}
	var xs [][]float64
	var labels []int
	for y := 0; y < 256; y += 3 {
		for x := 0; x < 256; x += 3 {
			xs = append(xs, mb.Pixel(x, y, nil))
			labels = append(labels, labelOf(x, y))
		}
	}
	gnb, err := bayes.TrainGNB(4, xs, labels)
	if err != nil {
		return out, err
	}
	mp, err := pyramid.BuildMultiband(mb, 6)
	if err != nil {
		return out, err
	}
	out.mb, out.gnb, out.mp = mb, gnb, mp
	return out, nil
})

func BenchmarkE2FlatClassification(b *testing.B) {
	d, err := e2Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.gnb.ClassifyScene(d.mb); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2ProgressiveClassification(b *testing.B) {
	d, err := e2Data()
	if err != nil {
		b.Fatal(err)
	}
	opt := bayes.ProgressiveOptions{MarginThreshold: 10, MaxRange: 80}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.gnb.ClassifyProgressiveOpts(d.mp, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3: progressive texture matching ----

var e3Data = sync.OnceValues(func() (struct {
	g     *raster.Grid
	p     *pyramid.Pyramid
	tiles []raster.Rect
	q     features.TextureQuery
}, error) {
	var out struct {
		g     *raster.Grid
		p     *pyramid.Pyramid
		tiles []raster.Rect
		q     features.TextureQuery
	}
	const w, h, tile = 256, 256, 32
	rng := rand.New(rand.NewSource(77))
	g := raster.MustGrid(w, h)
	for i := range g.Data() {
		g.Data()[i] = 95 + rng.Float64()*10
	}
	tx, ty := 128, 128
	for y := 0; y < tile; y++ {
		for x := 0; x < tile; x++ {
			v := 50.0
			if ((x/4)+(y/4))%2 == 0 {
				v = 200
			}
			g.Set(tx+x, ty+y, v)
		}
	}
	p, err := pyramid.Build(g, 4)
	if err != nil {
		return out, err
	}
	target := raster.Rect{X0: tx, Y0: ty, X1: tx + tile, Y1: ty + tile}
	coarse := p.Level(2)
	cRect := raster.Rect{
		X0: target.X0 / coarse.Scale, Y0: target.Y0 / coarse.Scale,
		X1: target.X1 / coarse.Scale, Y1: target.Y1 / coarse.Scale,
	}
	q := features.TextureQuery{Bins: 8, Levels: 8, Lo: 0, Hi: 255, PrefilterKeep: 0.15}
	q.TargetHist, err = features.NewHistogram(coarse.Mean, cRect, q.Bins, q.Lo, q.Hi)
	if err != nil {
		return out, err
	}
	q.TargetTexture, err = features.GLCM(g, target, q.Levels, q.Lo, q.Hi)
	if err != nil {
		return out, err
	}
	out.g, out.p, out.tiles, out.q = g, p, g.Tiles(tile), q
	return out, nil
})

func BenchmarkE3FlatTextureMatch(b *testing.B) {
	d, err := e3Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := features.MatchFlat(d.g, d.tiles, d.q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3ProgressiveTextureMatch(b *testing.B) {
	d, err := e3Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := features.MatchProgressive(d.p, d.tiles, d.q, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E4: SPROC evaluators ----

var e4Query = sync.OnceValue(func() sproc.Query {
	const l, m = 100, 3
	rng := rand.New(rand.NewSource(40))
	unary := make([][]float64, m)
	for mi := range unary {
		unary[mi] = make([]float64, l)
		for j := range unary[mi] {
			if rng.Float64() < 0.1 {
				unary[mi][j] = 0.5 + 0.5*rng.Float64()
			} else {
				unary[mi][j] = 0.4 * rng.Float64()
			}
		}
	}
	pair := make([]float64, l*l)
	for i := range pair {
		pair[i] = rng.Float64()
	}
	return sproc.Query{
		M:     m,
		Unary: func(mi, item int) float64 { return unary[mi][item] },
		Pair:  func(mi, a, b int) float64 { return pair[a*l+b] },
	}
})

func BenchmarkE4SprocBruteForce(b *testing.B) {
	q := e4Query()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sproc.BruteForce(100, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4SprocDP(b *testing.B) {
	q := e4Query()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sproc.DP(100, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4SprocPruned(b *testing.B) {
	q := e4Query()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sproc.Pruned(100, q, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E5: progressive model x progressive data ----

var e5Data = sync.OnceValues(func() (struct {
	mp *pyramid.MultibandPyramid
	pm *linear.ProgressiveModel
}, error) {
	var out struct {
		mp *pyramid.MultibandPyramid
		pm *linear.ProgressiveModel
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 55, W: 256, H: 256})
	if err != nil {
		return out, err
	}
	mp, err := pyramid.BuildMultiband(sc.Bands, 6)
	if err != nil {
		return out, err
	}
	pm, err := linear.Decompose(linear.HPSRisk(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		return out, err
	}
	out.mp, out.pm = mp, pm
	return out, nil
})

func BenchmarkE5FlatRetrieval(b *testing.B) {
	d, err := e5Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progressive.Flat(d.pm.Full(), d.mp, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ProgModelRetrieval(b *testing.B) {
	d, err := e5Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progressive.ProgModel(d.pm, d.mp, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ProgDataRetrieval(b *testing.B) {
	d, err := e5Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progressive.ProgData(d.pm.Full(), d.mp, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5CombinedRetrieval(b *testing.B) {
	d, err := e5Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := progressive.Combined(d.pm, d.mp, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E6: accuracy metrics ----

var e6Data = sync.OnceValues(func() (struct {
	risk, occ, weights *raster.Grid
}, error) {
	var out struct {
		risk, occ, weights *raster.Grid
	}
	sc, err := synth.LandsatScene(synth.SceneConfig{Seed: 66, W: 256, H: 256})
	if err != nil {
		return out, err
	}
	mp, err := pyramid.BuildMultiband(sc.Bands, 4)
	if err != nil {
		return out, err
	}
	risk, err := progressive.RiskSurface(linear.HPSRisk(), mp)
	if err != nil {
		return out, err
	}
	norm := risk.Clone()
	lo, hi := norm.MinMax()
	norm.Apply(func(v float64) float64 { return (v - lo) / (hi - lo) })
	occ, err := synth.Outbreak(synth.OutbreakConfig{Seed: 67, BaseRate: -3}, norm)
	if err != nil {
		return out, err
	}
	weights, err := synth.PopulationWeights(68, 256, 256)
	if err != nil {
		return out, err
	}
	out.risk, out.occ, out.weights = risk, occ, weights
	return out, nil
})

func BenchmarkE6ThresholdSweep(b *testing.B) {
	d, err := e6Data()
	if err != nil {
		b.Fatal(err)
	}
	costs := metrics.Costs{Miss: 10, FalseAlarm: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Sweep(d.risk, d.occ, d.weights, costs, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6PrecisionRecallAtK(b *testing.B) {
	d, err := e6Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.PRAtK(d.risk, d.occ, []int{10, 50, 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E7: fire-ants FSM retrieval ----

var e7Engine = sync.OnceValues(func() (*core.Engine, error) {
	arch, err := synth.WeatherArchive(synth.WeatherConfig{
		Seed: 71, Regions: 500, Days: 730, MeanTempC: 16,
	})
	if err != nil {
		return nil, err
	}
	// Timing engines disable the serving-layer result cache: these
	// benchmarks measure execution, and a repeated identical query
	// would otherwise be served from memory after the first rep.
	e := core.NewEngineWith(core.Options{CacheEntries: -1})
	if err := e.AddSeries("w", arch); err != nil {
		return nil, err
	}
	return e, nil
})

func BenchmarkE7FSMFlatScan(b *testing.B) {
	e, err := e7Engine()
	if err != nil {
		b.Fatal(err)
	}
	m := fsm.FireAnts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.FSMTopK("w", m, 10, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7FSMMetadataPruned(b *testing.B) {
	e, err := e7Engine()
	if err != nil {
		b.Fatal(err)
	}
	m := fsm.FireAnts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.FSMTopK("w", m, 10, core.FireAntsPrefilter); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E8: geology knowledge model ----

var e8Engine = sync.OnceValues(func() (*core.Engine, error) {
	wells, _, err := synth.WellArchive(synth.WellConfig{Seed: 81, Wells: 300})
	if err != nil {
		return nil, err
	}
	e := core.NewEngineWith(core.Options{CacheEntries: -1})
	if err := e.AddWells("basin", wells); err != nil {
		return nil, err
	}
	return e, nil
})

var e8Query = core.GeologyQuery{
	Sequence: []synth.Lithology{synth.Shale, synth.Sandstone, synth.Siltstone},
	MaxGapFt: 10,
	MinGamma: 45,
}

func benchGeology(b *testing.B, m core.GeologyMethod) {
	e, err := e8Engine()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.GeologyTopK("basin", e8Query, 10, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8GeologyBruteForce(b *testing.B) { benchGeology(b, core.GeoBruteForce) }
func BenchmarkE8GeologyDP(b *testing.B)         { benchGeology(b, core.GeoDP) }
func BenchmarkE8GeologyPruned(b *testing.B)     { benchGeology(b, core.GeoPruned) }

// ---- E9: shard scaling of the tuple engine ----

// The workload is experiments.ShardWorkload — the same scan-bound
// archive and model the CI-archived BENCH_shards.json measures. On a
// multi-core host the sub-benchmarks trace the speedup curve;
// GOMAXPROCS=1 shows break-even overhead.
var e9Data = sync.OnceValues(func() (struct {
	pts [][]float64
	m   *linear.Model
}, error) {
	var out struct {
		pts [][]float64
		m   *linear.Model
	}
	pts, m, err := experiments.ShardWorkload(experiments.ShardWorkloadSize)
	if err != nil {
		return out, err
	}
	out.pts, out.m = pts, m
	return out, nil
})

func BenchmarkLinearTopKSharded(b *testing.B) {
	d, err := e9Data()
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			e := core.NewEngineWith(core.Options{Shards: shards, CacheEntries: -1})
			if err := e.AddTuples("t", d.pts); err != nil {
				b.Fatal(err)
			}
			// First query builds the per-shard indexes; keep that out
			// of the timed region.
			if _, _, err := e.LinearTopKTuples("t", d.m, 10); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.LinearTopKTuples("t", d.m, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Unified Run API overhead vs the direct shard fan-out ----

// BenchmarkRunOverhead pins the cost of the Engine.Run request plumbing
// (Request validation, ctx checks, stats normalization) against the
// deprecated per-family entry point on the same engine and workload.
// The two share the execution path, so CI asserts they stay within
// noise of each other — the API redesign must not tax the hot path.
func BenchmarkRunOverhead(b *testing.B) {
	d, err := e9Data()
	if err != nil {
		b.Fatal(err)
	}
	e := core.NewEngineWith(core.Options{Shards: 4, CacheEntries: -1})
	if err := e.AddTuples("t", d.pts); err != nil {
		b.Fatal(err)
	}
	// First query builds the per-shard indexes outside the timed region.
	if _, _, err := e.LinearTopKTuples("t", d.m, 10); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: d.m}, K: 10}

	b.Run("unified-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy-wrapper", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.LinearTopKTuples("t", d.m, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct-shard-fanout", func(b *testing.B) {
		// The pre-redesign execution core, bypassing Request plumbing:
		// raw ShardTopK over the cached per-shard indexes.
		ixs := make([]*onion.Index, 4)
		offs := make([]int, 4)
		n := len(d.pts)
		for s := 0; s < 4; s++ {
			lo, hi := s*n/4, (s+1)*n/4
			ix, err := onion.Build(d.pts[lo:hi], onion.Options{})
			if err != nil {
				b.Fatal(err)
			}
			ixs[s], offs[s] = ix, lo
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, err := parallel.ShardTopK(4, 10, 0, func(si int, sb *topk.Bound) ([]topk.Item, error) {
				its, _, err := ixs[si].TopKShared(d.m.Coeffs, 10, sb)
				if err != nil {
					return nil, err
				}
				for j := range its {
					its[j].ID += int64(offs[si])
				}
				return its, nil
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunProgressiveDrain measures the streaming variant with a
// draining consumer, including snapshot assembly and delivery.
func BenchmarkRunProgressiveDrain(b *testing.B) {
	pts, err := synth.GaussianTuples(77, 20_000, 3)
	if err != nil {
		b.Fatal(err)
	}
	m, err := linear.New([]string{"a", "b", "c"}, []float64{1, 0.5, -0.25}, 0)
	if err != nil {
		b.Fatal(err)
	}
	e := core.NewEngineWith(core.Options{Shards: 2})
	if err := e.AddTuples("t", pts); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: 10}
	if _, err := e.Run(ctx, req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := e.RunProgressive(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		for snap := range ch {
			if snap.Err != nil {
				b.Fatal(snap.Err)
			}
		}
	}
}

// ---- Serving layer: RunBatch amortization and the result cache ----

// BenchmarkRunBatch compares a batch of distinct linear requests
// executed as one serving unit (shared worker pool, one admission
// grant) against the same requests issued as individual Runs. Caches
// are disabled on both engines so the comparison is pure execution;
// the cache's own win is BenchmarkCacheHit's subject.
func BenchmarkRunBatch(b *testing.B) {
	d, err := e9Data()
	if err != nil {
		b.Fatal(err)
	}
	e := core.NewEngineWith(core.Options{Shards: 4, CacheEntries: -1})
	if err := e.AddTuples("t", d.pts); err != nil {
		b.Fatal(err)
	}
	const width = 8
	dim := len(d.pts[0])
	reqs := make([]core.Request, width)
	for i := range reqs {
		attrs := make([]string, dim)
		coeffs := make([]float64, dim)
		for j := range coeffs {
			attrs[j] = fmt.Sprintf("x%d", j)
			coeffs[j] = d.m.Coeffs[j] + float64(i)*0.01*float64(j+1)
		}
		m, err := linear.New(attrs, coeffs, 0)
		if err != nil {
			b.Fatal(err)
		}
		reqs[i] = core.Request{Dataset: "t", Query: core.LinearQuery{Model: m}, K: 10}
	}
	ctx := context.Background()
	// Build the per-shard indexes outside the timed region.
	if _, err := e.Run(ctx, reqs[0]); err != nil {
		b.Fatal(err)
	}

	b.Run("batch-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			batch, err := e.RunBatch(ctx, reqs)
			if err != nil {
				b.Fatal(err)
			}
			for _, br := range batch {
				if br.Err != nil {
					b.Fatal(br.Err)
				}
			}
		}
	})
	b.Run("solo-8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, req := range reqs {
				if _, err := e.Run(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkCacheHit pins the acceptance criterion: on the linear
// family, a cache hit must be at least 10x cheaper than the cold
// execution it replays (CI compares the two ns/op lines; the
// benchtab -servejson artifact records the ratio).
func BenchmarkCacheHit(b *testing.B) {
	d, err := e9Data()
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		e := core.NewEngineWith(core.Options{Shards: 4, CacheEntries: -1})
		if err := e.AddTuples("t", d.pts); err != nil {
			b.Fatal(err)
		}
		req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: d.m}, K: 10}
		if _, err := e.Run(ctx, req); err != nil { // index build untimed
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		e := core.NewEngineWith(core.Options{Shards: 4})
		if err := e.AddTuples("t", d.pts); err != nil {
			b.Fatal(err)
		}
		req := core.Request{Dataset: "t", Query: core.LinearQuery{Model: d.m}, K: 10}
		if _, err := e.Run(ctx, req); err != nil { // warm the cache
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := e.Run(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.Cache.Hit {
				b.Fatal("benchmark fell off the cache path")
			}
		}
	})
}

// ---- Columnar scan-bound hot path: layout and allocation pins ----

// e10Store builds the E9 scan-bound workload into a columnar store
// (norm-ordered blocks with zone maps) — the storage layout the tuple
// engine's Onion index scans in its weak-pruning regime.
var e10Store = sync.OnceValues(func() (struct {
	store *colstore.Store
	w     []float64
}, error) {
	var out struct {
		store *colstore.Store
		w     []float64
	}
	pts, m, err := experiments.ShardWorkload(experiments.ShardWorkloadSize)
	if err != nil {
		return out, err
	}
	st, err := colstore.Build(pts, colstore.Options{NormOrder: true})
	if err != nil {
		return out, err
	}
	out.store, out.w = st, m.Coeffs
	return out, nil
})

// BenchmarkLinearScanSteadyState is the zero-allocation acceptance
// pin: the columnar blocked scan over the scan-bound workload, with a
// pooled heap and a reused result buffer, must report 0 allocs/op — the
// benchmark fails (not just reports) if a warmed-up scan allocates.
func BenchmarkLinearScanSteadyState(b *testing.B) {
	d, err := e10Store()
	if err != nil {
		b.Fatal(err)
	}
	wNorm := colstore.WeightNorm(d.w)
	h := topk.MustHeap(10)
	buf := make([]topk.Item, 0, 10)
	var st colstore.Stats
	scan := func() {
		h.Reset()
		d.store.Scan(d.w, wNorm, h, nil, nil, nil, &st)
		buf = h.AppendResults(buf[:0])
	}
	scan() // warm the scratch pool
	if allocs := testing.AllocsPerRun(5, scan); allocs != 0 {
		b.Fatalf("steady-state columnar scan allocates %.1f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan()
	}
	if len(buf) != 10 {
		b.Fatalf("scan kept %d items", len(buf))
	}
}

// BenchmarkLinearScanRowLayout is the row-layout ([][]float64)
// sequential scan over the same workload — the baseline the columnar
// path's speedup is measured against (benchtab -memjson records both).
func BenchmarkLinearScanRowLayout(b *testing.B) {
	d, err := e9Data()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := onion.ScanTopK(d.pts, d.m.Coeffs, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLinearScanSteadyStateUnderRace is the race-detector companion of
// BenchmarkLinearScanSteadyState (satellite of the columnar-kernel
// work): the zero-allocation assertion is meaningless under -race
// (sync.Pool intentionally drops puts), so this variant exercises the
// same steady-state loop — pooled scratch, reused heap, reused result
// buffer — WITHOUT allocation counting and pins its results against a
// fresh non-pooled scan each iteration. `go test -race ./...` in CI
// therefore covers the steady-state path in both build modes.
func TestLinearScanSteadyStateUnderRace(t *testing.T) {
	d, err := e10Store()
	if err != nil {
		t.Fatal(err)
	}
	wNorm := colstore.WeightNorm(d.w)
	h := topk.MustHeap(10)
	buf := make([]topk.Item, 0, 10)
	var st colstore.Stats
	for iter := 0; iter < 5; iter++ {
		// Steady-state shape: reused heap and buffer.
		h.Reset()
		d.store.Scan(d.w, wNorm, h, nil, nil, nil, &st)
		buf = h.AppendResults(buf[:0])
		// Non-pooled correctness variant: fresh heap, fresh results.
		fresh := topk.MustHeap(10)
		var fst colstore.Stats
		d.store.Scan(d.w, wNorm, fresh, nil, nil, nil, &fst)
		want := fresh.Results()
		if len(buf) != len(want) {
			t.Fatalf("iter %d: steady-state kept %d items, fresh %d", iter, len(buf), len(want))
		}
		for i := range want {
			if buf[i].ID != want[i].ID || buf[i].Score != want[i].Score {
				t.Fatalf("iter %d pos %d: steady %+v vs fresh %+v", iter, i, buf[i], want[i])
			}
		}
	}
}

// ---- Columnar pyramid scan: layout and allocation pins ----

// BenchmarkSceneScanSteadyState is the pyramid-family zero-allocation
// acceptance pin: the flat-layout branch-and-bound descent with pooled
// heap, pooled scratch and a reused result buffer must report
// 0 allocs/op — the benchmark fails (not just reports) if a warmed-up
// descent allocates.
func BenchmarkSceneScanSteadyState(b *testing.B) {
	d, err := e5Data()
	if err != nil {
		b.Fatal(err)
	}
	roots := progressive.Roots(d.mp)
	buf := make([]topk.Item, 0, 10)
	scan := func() {
		var err error
		buf, _, err = progressive.CombinedShardAppend(d.pm, d.mp, 10, roots, progressive.DescendOpts{}, buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	scan() // warm the pools
	if allocs := testing.AllocsPerRun(5, scan); allocs != 0 {
		b.Fatalf("steady-state pyramid descent allocates %.1f allocs/op, want 0", allocs)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan()
	}
	if len(buf) != 10 {
		b.Fatalf("descent kept %d items", len(buf))
	}
}
