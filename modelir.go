// Package modelir is the public API of the model-based multi-modal
// information retrieval library — a from-scratch reproduction of
// Li, Chang, Bergman & Smith, "Model-Based Multi-modal Information
// Retrieval from Large Archives" (ICDCS 2000).
//
// Instead of retrieving by similarity to a template, queries here are
// *models* — linear, finite-state, or knowledge (Bayesian/fuzzy) — and
// the system returns the top-K data subsets that maximize or satisfy the
// model. Scaling to large archives comes from three mechanisms, all
// implemented in this module:
//
//   - progressive model decomposition (coarse sub-models screen first);
//   - progressive data representations (resolution pyramids + feature /
//     semantic / metadata abstraction levels);
//   - model-specific indexes (Onion convex layers for linear
//     optimization, SPROC dynamic programming for fuzzy composite
//     queries).
//
// Every query family flows through one entry point — "a query is a
// model" made literal: build a Request around a family-specific Query
// value and execute it with Engine.Run, which honors context
// cancellation and deadlines, per-request tuning (K, Workers, Budget,
// MinScore), and returns one normalized Result/QueryStats shape.
// Engine.RunProgressive streams monotonically improving top-K
// snapshots as screening levels complete.
//
// Quick start:
//
//	engine := modelir.NewEngine()
//	_ = engine.AddTuples("credit", rows)
//	model, _ := modelir.NewLinearModel(attrs, weights, 0)
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	res, _ := engine.Run(ctx, modelir.Request{
//		Dataset: "credit",
//		Query:   modelir.LinearQuery{Model: model},
//		K:       10,
//	})
//	// res.Items is the exact top-10; res.Stats the normalized work report.
//
// See examples/ for end-to-end scenarios (epidemiology, fire ants,
// geology, credit scoring) and DESIGN.md for the system inventory.
package modelir

import (
	"modelir/internal/archive"
	"modelir/internal/bayes"
	"modelir/internal/cluster"
	"modelir/internal/core"
	"modelir/internal/fsm"
	"modelir/internal/linear"
	"modelir/internal/metrics"
	"modelir/internal/onion"
	"modelir/internal/progressive"
	"modelir/internal/raster"
	"modelir/internal/segment"
	"modelir/internal/sproc"
	"modelir/internal/synth"
	"modelir/internal/topk"
)

// Engine is the retrieval engine: register archives, then query them
// with models. Archives are sharded at ingest and queries execute in
// parallel across shards; the engine is safe for concurrent
// registration and querying. See core.Engine for method documentation.
type Engine = core.Engine

// EngineOptions tunes engine construction; the zero value shards each
// dataset GOMAXPROCS ways. Shards=1 reproduces a sequential engine.
// The Onion field takes a modelir.OnionOptions value.
type EngineOptions = core.Options

// NewEngine returns an empty retrieval engine with default options.
func NewEngine() *Engine { return core.NewEngine() }

// NewEngineWithOptions returns an empty retrieval engine with the given
// shard count and index tuning.
func NewEngineWithOptions(opt EngineOptions) *Engine { return core.NewEngineWith(opt) }

// Engine registration errors, for errors.Is against Run/RunBatch and
// the Add* methods.
var (
	// ErrUnknownDataset reports a query against an unregistered name.
	ErrUnknownDataset = core.ErrUnknownDataset
	// ErrDuplicateDataset reports a re-registration of a taken name.
	ErrDuplicateDataset = core.ErrDuplicateDataset
)

// Retrieval plumbing.
type (
	// Item is one scored retrieval result.
	Item = topk.Item
	// ModelKind enumerates the paper's model families.
	ModelKind = core.ModelKind
)

// Model family tags.
const (
	KindLinear      = core.KindLinear
	KindFiniteState = core.KindFiniteState
	KindKnowledge   = core.KindKnowledge
)

// The unified query surface: one Request/Result shape for every model
// family, executed via Engine.Run / Engine.RunProgressive.
type (
	// Request describes one retrieval: dataset, query, and per-request
	// options (K, Workers, Budget, MinScore).
	Request = core.Request
	// Result is Run's uniform response: ranked items plus normalized
	// stats.
	Result = core.Result
	// QueryStats is the normalized work report shared by all families.
	QueryStats = core.QueryStats
	// Snapshot is one progressive-delivery event from RunProgressive.
	Snapshot = core.Snapshot
	// BatchResult is one request's outcome within Engine.RunBatch.
	BatchResult = core.BatchResult
	// CacheInfo reports the result cache's involvement in one request
	// (QueryStats.Cache).
	CacheInfo = core.CacheInfo
	// Query is an executable model query (sealed; use the family query
	// types below).
	Query = core.Query

	// LinearQuery runs a linear model over a tuple archive (Onion
	// index).
	LinearQuery = core.LinearQuery
	// SceneQuery runs a progressive linear model over a raster archive
	// (combined progressive execution).
	SceneQuery = core.SceneQuery
	// FSMQuery ranks series regions by finite-state model score.
	FSMQuery = core.FSMQuery
	// FSMDistanceQuery ranks series regions by machine distance.
	FSMDistanceQuery = core.FSMDistanceQuery
	// KnowledgeQuery ranks scene tiles by fuzzy rule-set score.
	KnowledgeQuery = core.KnowledgeQuery

	// FSMPrefilter screens series regions from metadata alone.
	FSMPrefilter = core.FSMPrefilter
	// GeologyMethod selects the SPROC evaluator for GeologyQuery.
	GeologyMethod = core.GeologyMethod
)

// DefaultK is the result count used when Request.K is zero.
const DefaultK = core.DefaultK

// FireAntsPrefilter is the sound metadata prefilter for the Fig. 1
// fire-ants machine, usable as FSMQuery.Prefilter. It is the same
// function value as the core's, so the cluster wire codec recognizes
// it as the named "fireants" prefilter.
var FireAntsPrefilter FSMPrefilter = core.FireAntsPrefilter

// WellMatches converts GeologyQuery result items (well IDs with strata
// payloads) into WellMatch values.
func WellMatches(items []Item) ([]WellMatch, error) { return core.WellMatches(items) }

// Linear models (Section 2.1).
type (
	// LinearModel is Y = a1·X1 + … + an·Xn (+ intercept).
	LinearModel = linear.Model
	// ProgressiveLinearModel is a linear model decomposed into
	// coarse-to-fine levels with sound residual bounds (Section 3.1).
	ProgressiveLinearModel = linear.ProgressiveModel
)

// NewLinearModel builds a linear model over named attributes.
func NewLinearModel(attrs []string, coeffs []float64, intercept float64) (*LinearModel, error) {
	return linear.New(attrs, coeffs, intercept)
}

// FitLinearModel calibrates a model from training rows by ordinary least
// squares (the paper's step 2, "fit the model and determine the model
// coefficients").
func FitLinearModel(attrs []string, xs [][]float64, ys []float64) (*LinearModel, error) {
	return linear.Fit(attrs, xs, ys)
}

// DecomposeLinear orders terms by contribution over the given attribute
// ranges and produces the progressive model with the requested per-level
// term counts (ascending, last = all terms).
func DecomposeLinear(m *LinearModel, attrLo, attrHi []float64, levelTerms ...int) (*ProgressiveLinearModel, error) {
	return linear.Decompose(m, attrLo, attrHi, levelTerms...)
}

// HPSRiskModel returns the paper's Hantavirus risk model
// R = 0.443·b4 + 0.222·b5 + 0.153·b7 + 0.183·elev.
func HPSRiskModel() *LinearModel { return linear.HPSRisk() }

// CreditScoreModel returns the FICO-style surrogate scoring model
// (score = 900 − Σ wᵢXᵢ, range 300-900).
func CreditScoreModel() *LinearModel { return linear.CreditScore() }

// ForeclosureProbability maps a credit score to the calibrated
// foreclosure probability (<2% above 680, ~8% at 620).
func ForeclosureProbability(score float64) float64 {
	return linear.ForeclosureProbability(score)
}

// Finite-state models (Section 2.2).
type (
	// Machine is a complete DFA over a multi-modal event alphabet.
	Machine = fsm.Machine
	// MachineBuilder assembles machines.
	MachineBuilder = fsm.Builder
	// Event is a symbol index into a machine's alphabet.
	Event = fsm.Event
)

// NewMachineBuilder starts a machine over the given event alphabet.
func NewMachineBuilder(alphabet []string) *MachineBuilder { return fsm.NewBuilder(alphabet) }

// FireAntsModel returns the Fig. 1 machine (rain, then >= 3 dry days,
// then temperature >= 25°C => fire ants fly).
func FireAntsModel() *Machine { return fsm.FireAnts() }

// MachineDistance is the exact behavioral distance between two machines
// over strings up to maxLen (Section 3's FSM similarity).
func MachineDistance(a, b *Machine, maxLen int) (float64, error) {
	return fsm.Distance(a, b, maxLen)
}

// MinimizeMachine returns the canonical minimal DFA equivalent to m.
func MinimizeMachine(m *Machine) (*Machine, error) { return fsm.Minimize(m) }

// MachinesEquivalent reports whether two machines accept exactly the
// same event sequences.
func MachinesEquivalent(a, b *Machine) (bool, error) { return fsm.Equivalent(a, b) }

// Knowledge models (Section 2.3).
type (
	// BayesNet is a discrete Bayesian network with exact inference.
	BayesNet = bayes.Network
	// BayesBuilder assembles networks.
	BayesBuilder = bayes.Builder
	// RuleSet is a fuzzy-AND rule set for knowledge models.
	RuleSet = bayes.RuleSet
	// Membership grades a scalar into [0,1].
	Membership = bayes.Membership
	// GeologyQuery is the Fig. 4 strata-sequence knowledge model.
	GeologyQuery = core.GeologyQuery
	// WellMatch is a retrieved well with its matching strata.
	WellMatch = core.WellMatch
)

// NewBayesBuilder starts a Bayesian network definition.
func NewBayesBuilder() *BayesBuilder { return bayes.NewBuilder() }

// HPSNetwork returns the Fig. 3 high-risk-house network and its variable
// handle.
func HPSNetwork() (*BayesNet, bayes.HPSVars, error) { return bayes.HPSNetwork() }

// NewRuleSet starts an empty fuzzy rule set.
func NewRuleSet() *RuleSet { return bayes.NewRuleSet() }

// HPSTileRules compiles the Fig. 3 model into a feature-level rule set
// for Engine.KnowledgeTopKTiles on Landsat-like archives.
func HPSTileRules() *RuleSet { return core.HPSTileRules() }

// Geology evaluator choices.
const (
	GeoBruteForce = core.GeoBruteForce
	GeoDP         = core.GeoDP
	GeoPruned     = core.GeoPruned
)

// Raster / archive substrate.
type (
	// Grid is a dense 2-D raster.
	Grid = raster.Grid
	// Multiband is a co-registered band stack.
	Multiband = raster.Multiband
	// Rect is a half-open integer rectangle.
	Rect = raster.Rect
	// SceneArchive is the progressive data representation of a scene.
	SceneArchive = archive.Scene
	// ArchiveOptions controls archive construction.
	ArchiveOptions = archive.Options
)

// BuildSceneArchive constructs the progressive representation (tiles,
// features, pyramid) of a multiband scene.
func BuildSceneArchive(name string, m *Multiband, opt ArchiveOptions) (*SceneArchive, error) {
	return archive.BuildScene(name, m, opt)
}

// LoadSceneArchive reads an archive file written by SceneArchive.Save.
func LoadSceneArchive(path string) (*SceneArchive, error) { return archive.Load(path) }

// Indexes.
type (
	// OnionIndex is the convex-layer index for linear optimization
	// queries [11].
	OnionIndex = onion.Index
	// OnionOptions tunes Onion construction.
	OnionOptions = onion.Options
	// SprocQuery is a fuzzy Cartesian composite-object query [15,16].
	SprocQuery = sproc.Query
)

// BuildOnion constructs an Onion index over tuple rows.
func BuildOnion(points [][]float64, opt OnionOptions) (*OnionIndex, error) {
	return onion.Build(points, opt)
}

// Progressive execution.
type (
	// ProgressiveStats measures retrieval work in term evaluations.
	ProgressiveStats = progressive.Stats
	// Speedups is the four-cell flat/model/data/combined comparison.
	Speedups = progressive.Speedups
)

// CompareProgressive runs flat, progressive-model, progressive-data and
// combined retrieval, verifies they agree, and reports the speedups
// (experiment E5).
func CompareProgressive(pm *ProgressiveLinearModel, sc *SceneArchive, k int) (Speedups, []Item, error) {
	return progressive.Compare(pm, sc.Pyramid(), k)
}

// Accuracy metrics (Section 4.1).
type (
	// Costs holds the miss / false-alarm costs cm, cf.
	Costs = metrics.Costs
	// SweepPoint is one row of a threshold sweep.
	SweepPoint = metrics.SweepPoint
)

// SweepThresholds evaluates Pm, Pf and CT across thresholds.
func SweepThresholds(risk, occurrence, weights *Grid, costs Costs, steps int) ([]SweepPoint, error) {
	return metrics.Sweep(risk, occurrence, weights, costs, steps)
}

// PrecisionRecallAtK scores top-K risk locations against an occurrence
// ground truth.
func PrecisionRecallAtK(risk, occurrence *Grid, ks []int) (map[int][2]float64, error) {
	return metrics.PRAtK(risk, occurrence, ks)
}

// Workflow is the Fig. 5 hypothesize → calibrate → retrieve → revise →
// apply loop for linear models.
type Workflow = core.Workflow

// NewWorkflow starts a Fig. 5 workflow over the given attributes.
func NewWorkflow(attrs []string) (*Workflow, error) { return core.NewWorkflow(attrs) }

// Synthetic archives (substitutes for the paper's proprietary data; see
// DESIGN.md §4).
type (
	// SceneConfig parameterizes synthetic Landsat-like scenes.
	SceneConfig = synth.SceneConfig
	// WeatherConfig parameterizes synthetic weather archives.
	WeatherConfig = synth.WeatherConfig
	// WellConfig parameterizes synthetic well-log archives.
	WellConfig = synth.WellConfig
	// Lithology is a rock class in well logs.
	Lithology = synth.Lithology
	// RegionSeries is one region's daily weather series.
	RegionSeries = synth.RegionSeries
	// WellLog is one well's strata log.
	WellLog = synth.WellLog
)

// Lithology classes.
const (
	Shale     = synth.Shale
	Sandstone = synth.Sandstone
	Siltstone = synth.Siltstone
	Limestone = synth.Limestone
	Dolomite  = synth.Dolomite
)

// GenerateScene synthesizes a Landsat-TM-like multiband scene.
func GenerateScene(cfg SceneConfig) (*synth.Scene, error) { return synth.LandsatScene(cfg) }

// GenerateWeather synthesizes a multi-region daily weather archive.
func GenerateWeather(cfg WeatherConfig) ([]RegionSeries, error) {
	return synth.WeatherArchive(cfg)
}

// GenerateWells synthesizes a well-log archive; the second return lists
// wells with a planted riverbed signature (ground truth).
func GenerateWells(cfg WellConfig) ([]WellLog, []int, error) {
	return synth.WellArchive(cfg)
}

// GenerateTuples synthesizes n i.i.d. d-dimensional Gaussian tuples (the
// Onion evaluation workload).
func GenerateTuples(seed int64, n, d int) ([][]float64, error) {
	return synth.GaussianTuples(seed, n, d)
}

// Live ingest (DESIGN.md §11): registered tuple, series and well
// datasets grow under traffic via Engine.AppendTuples / AppendSeries /
// AppendWells. New rows land in immutable in-memory delta segments
// that every query family scans alongside the base shards — answers
// are bit-identical to re-registering the grown dataset from scratch —
// and a background compactor folds deltas back into base shards once
// they accumulate. Each dataset carries its own cache generation
// (DatasetInfo.Gen), so appends to one dataset never evict another's
// cached results. Engine.Compact forces compaction synchronously.
type (
	// Appender coalesces concurrent small appends into one delta
	// segment per flush window (size + max-wait thresholds); every
	// caller gets its own flush outcome.
	Appender = core.Appender
	// AppenderOptions tunes the Appender's flush windows.
	AppenderOptions = core.AppenderOptions
)

// ErrAppenderClosed reports an append after Appender.Close.
var ErrAppenderClosed = core.ErrAppenderClosed

// NewAppender returns a batching appender over e.
func NewAppender(e *Engine, opt AppenderOptions) *Appender { return core.NewAppender(e, opt) }

// Multi-node serving (DESIGN.md §9): datasets partitioned across shard
// servers by consistent hashing, queries scatter-gathered by a router,
// answers bit-identical to a single-node engine.
type (
	// ClusterTopology names the node set and per-dataset replication.
	ClusterTopology = cluster.Topology
	// ClusterNode is one shard server: a private engine plus a TCP
	// listener serving its partitions.
	ClusterNode = cluster.Node
	// ClusterNodeOptions configures a shard server.
	ClusterNodeOptions = cluster.NodeOptions
	// ClusterRouter fans requests out across a topology and merges the
	// per-node top-K partials exactly.
	ClusterRouter = cluster.Router
	// ClusterRequest is the router-level request shape.
	ClusterRequest = cluster.Request
	// ClusterRouterOptions tunes the router's fault handling: dial/ack
	// timeouts and the retry/backoff schedule for reads and appends.
	ClusterRouterOptions = cluster.RouterOptions
	// ClusterAppendRequest is one replicated append: a dataset plus
	// exactly one non-empty payload, optionally carrying an idempotency
	// token.
	ClusterAppendRequest = cluster.AppendRequest
	// ClusterAppendResult reports a replicated append's outcome,
	// including any replicas it quarantined.
	ClusterAppendResult = cluster.AppendResult
	// ClusterHealthState is one peer's position in the router's health
	// machine (healthy / suspect / down / stale / resyncing).
	ClusterHealthState = cluster.HealthState
	// ClusterResyncStats counts the router's replica-resync and crash-
	// recovery events (DESIGN.md §13): snapshot resyncs run, bytes
	// streamed, batches replayed, forced log prunes.
	ClusterResyncStats = cluster.ResyncStats
)

// ErrPartitionUnavailable reports that every replica of some partition
// failed at the transport level; the cluster never substitutes a
// partial answer.
var ErrPartitionUnavailable = cluster.ErrPartitionUnavailable

// NewClusterNode creates a shard server for self (its dial address in
// the topology). Add datasets, then Serve.
func NewClusterNode(self string, topo ClusterTopology, opt ClusterNodeOptions) *ClusterNode {
	return cluster.NewNode(self, topo, opt)
}

// NewClusterRouter returns a router over the topology.
func NewClusterRouter(topo ClusterTopology) *ClusterRouter { return cluster.NewRouter(topo) }

// NewClusterRouterWith returns a router with explicit fault-handling
// options (retry counts, backoff schedule, timeouts).
func NewClusterRouterWith(topo ClusterTopology, opt ClusterRouterOptions) *ClusterRouter {
	return cluster.NewRouterWith(topo, opt)
}

// Durable snapshots (DESIGN.md §10): Engine.Snapshot persists every
// registered dataset's built serving state — columnar planes, Onion
// layer ordering, pyramid levels, event planes, strata columns — as
// page-aligned checksummed sections behind a SnapshotBackend, and
// OpenSnapshot restores a serving-ready engine from them without
// re-running a single index build. Restored engines answer every query
// family bit-identically to the engine that wrote the snapshot.
type (
	// SnapshotBackend is the narrow storage interface snapshots are
	// written to and restored from; NewSnapshotDir is the local-
	// directory implementation.
	SnapshotBackend = segment.Backend
	// SnapshotDir is a local-directory snapshot backend with atomic
	// tmp-file + rename writes and an fsync'd manifest.
	SnapshotDir = segment.Dir
	// RestoreMode selects how OpenSnapshot materializes columnar
	// planes: RestoreCopy or RestoreMap.
	RestoreMode = segment.RestoreMode
	// RestoreOptions tunes OpenSnapshot (mode plus the restored
	// engine's serving options; the shard count always comes from the
	// snapshot manifest).
	RestoreOptions = core.RestoreOptions
	// DatasetInfo describes one registered dataset (Engine.Datasets).
	DatasetInfo = core.DatasetInfo
)

// Restore modes.
const (
	// RestoreCopy decodes sections into freshly allocated memory
	// (portable, works everywhere).
	RestoreCopy = segment.Copy
	// RestoreMap mmaps segment files read-only and serves the planes
	// in place — archives larger than RAM work, and cold start is
	// page-fault-bounded. Close the engine to release the mappings.
	RestoreMap = segment.Map
)

// Snapshot errors, for errors.Is against OpenSnapshot and restore-time
// reads. Corruption is always refused with a typed error — a damaged
// snapshot can never produce a wrong answer.
var (
	// ErrNoSnapshot reports a backend with no snapshot on it.
	ErrNoSnapshot = segment.ErrNoSnapshot
	// ErrSnapshotCorrupt reports structural damage (bad framing,
	// missing files or sections, manifest inconsistencies).
	ErrSnapshotCorrupt = segment.ErrCorrupt
	// ErrSnapshotChecksum reports a section whose bytes do not match
	// the manifest's SHA-256.
	ErrSnapshotChecksum = segment.ErrChecksum
	// ErrSnapshotVersion reports a snapshot written by an unknown
	// format version.
	ErrSnapshotVersion = segment.ErrVersion
	// ErrMapUnsupported reports that RestoreMap cannot work here
	// (non-unix host, big-endian host, or a non-mappable backend);
	// fall back to RestoreCopy.
	ErrMapUnsupported = segment.ErrMapUnsupported
)

// NewSnapshotDir opens (creating if needed) a local snapshot
// directory.
func NewSnapshotDir(path string) (*SnapshotDir, error) { return segment.NewDir(path) }

// OpenSnapshot restores a serving-ready engine from a snapshot
// written by Engine.Snapshot.
func OpenSnapshot(b SnapshotBackend, opt RestoreOptions) (*Engine, error) {
	return core.OpenSnapshot(b, opt)
}

// RestoreClusterNode restores a shard server from a snapshot written
// by ClusterNode.Snapshot: the node's engine-level partitions plus its
// placement metadata, validated against the topology the cluster is
// booting with. Add no datasets afterwards; just Serve.
func RestoreClusterNode(self string, topo ClusterTopology, opt ClusterNodeOptions, b SnapshotBackend, mode RestoreMode) (*ClusterNode, error) {
	return cluster.RestoreNode(self, topo, opt, b, mode)
}
