module modelir

go 1.21
