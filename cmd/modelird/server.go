// HTTP wiring for modelird: JSON request/response shapes, query
// compilation from the wire format, and the handlers (/run, /batch,
// /append, /stats, /healthz, /admin/snapshot). Every query handler threads the
// http.Request context into the engine, so a client that disconnects
// mid-query cancels its shard fan-out instead of burning CPU for
// nobody. The listener comes up before the engine is restored or
// built; until then /healthz answers 503 and every other endpoint
// refuses with the same status, so callers can wait on boot
// deterministically.

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modelir"
)

// wireQuery is the JSON query shape: kind selects the family, the
// remaining fields are family-specific.
type wireQuery struct {
	Kind string `json:"kind"`

	// linear + scene: the model. Attrs defaults to x0..xn-1. For scene
	// queries with explicit coefficients, AttrLo/AttrHi/Levels control
	// the progressive decomposition; with no coefficients the demo HPS
	// risk model is used.
	Attrs     []string  `json:"attrs,omitempty"`
	Coeffs    []float64 `json:"coeffs,omitempty"`
	Intercept float64   `json:"intercept,omitempty"`
	AttrLo    []float64 `json:"attr_lo,omitempty"`
	AttrHi    []float64 `json:"attr_hi,omitempty"`
	Levels    []int     `json:"levels,omitempty"`

	// fsm + fsm-distance: a named machine ("fireants" is the built-in)
	// and options.
	Machine   string `json:"machine,omitempty"`
	Prefilter bool   `json:"prefilter,omitempty"`
	Horizon   int    `json:"horizon,omitempty"`

	// geology.
	Sequence     []string `json:"sequence,omitempty"`
	MaxGapFt     float64  `json:"max_gap_ft,omitempty"`
	MinGamma     float64  `json:"min_gamma,omitempty"`
	GammaRampAPI float64  `json:"gamma_ramp_api,omitempty"`
	Method       string   `json:"method,omitempty"`

	// knowledge: a named rule set ("hps" is the built-in).
	Rules string `json:"rules,omitempty"`
}

// wireRequest is the JSON request shape accepted by /run and inside
// /batch.
type wireRequest struct {
	Dataset  string    `json:"dataset"`
	Query    wireQuery `json:"query"`
	K        int       `json:"k,omitempty"`
	Workers  int       `json:"workers,omitempty"`
	Budget   int       `json:"budget,omitempty"`
	MinScore *float64  `json:"min_score,omitempty"`
}

type wireItem struct {
	ID     int64   `json:"id"`
	Score  float64 `json:"score"`
	Strata []int   `json:"strata,omitempty"`
}

type wireCache struct {
	Hit           bool   `json:"hit"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
}

type wireStats struct {
	Kind        string    `json:"kind"`
	Evaluations int       `json:"evaluations"`
	Examined    int       `json:"examined"`
	Pruned      int       `json:"pruned"`
	Shards      int       `json:"shards"`
	WallNS      int64     `json:"wall_ns"`
	Truncated   bool      `json:"truncated"`
	Cache       wireCache `json:"cache"`
}

type wireResult struct {
	Items []wireItem `json:"items"`
	Stats wireStats  `json:"stats"`
	Error string     `json:"error,omitempty"`
}

func toWireResult(res modelir.Result, err error) wireResult {
	if err != nil {
		return wireResult{Error: err.Error()}
	}
	out := wireResult{
		Items: make([]wireItem, len(res.Items)),
		Stats: wireStats{
			Kind:        res.Stats.Kind.String(),
			Evaluations: res.Stats.Evaluations,
			Examined:    res.Stats.Examined,
			Pruned:      res.Stats.Pruned,
			Shards:      res.Stats.Shards,
			WallNS:      res.Stats.Wall.Nanoseconds(),
			Truncated:   res.Stats.Truncated,
			Cache: wireCache{
				Hit:           res.Stats.Cache.Hit,
				Hits:          res.Stats.Cache.Hits,
				Misses:        res.Stats.Cache.Misses,
				Evictions:     res.Stats.Cache.Evictions,
				Invalidations: res.Stats.Cache.Invalidations,
			},
		},
	}
	for i, it := range res.Items {
		w := wireItem{ID: it.ID, Score: it.Score}
		if strata, ok := it.Payload.([]int); ok {
			w.Strata = strata
		}
		out.Items[i] = w
	}
	return out
}

// compileRequest turns a wire request into an engine request.
func compileRequest(wr wireRequest) (modelir.Request, error) {
	q, err := compileQuery(wr.Query)
	if err != nil {
		return modelir.Request{}, err
	}
	return modelir.Request{
		Dataset:  wr.Dataset,
		Query:    q,
		K:        wr.K,
		Workers:  wr.Workers,
		Budget:   wr.Budget,
		MinScore: wr.MinScore,
	}, nil
}

func compileQuery(wq wireQuery) (modelir.Query, error) {
	switch strings.ToLower(wq.Kind) {
	case "linear":
		m, err := linearModelOf(wq)
		if err != nil {
			return nil, err
		}
		return modelir.LinearQuery{Model: m}, nil
	case "scene":
		if len(wq.Coeffs) == 0 {
			// The built-in demo: the paper's HPS risk model over
			// Landsat bands + elevation, 2-term coarse level.
			pm, err := modelir.DecomposeLinear(modelir.HPSRiskModel(),
				[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
			if err != nil {
				return nil, err
			}
			return modelir.SceneQuery{Model: pm}, nil
		}
		m, err := linearModelOf(wq)
		if err != nil {
			return nil, err
		}
		if len(wq.AttrLo) != len(wq.Coeffs) || len(wq.AttrHi) != len(wq.Coeffs) || len(wq.Levels) == 0 {
			return nil, errors.New("scene query needs attr_lo/attr_hi/levels matching coeffs")
		}
		pm, err := modelir.DecomposeLinear(m, wq.AttrLo, wq.AttrHi, wq.Levels...)
		if err != nil {
			return nil, err
		}
		return modelir.SceneQuery{Model: pm}, nil
	case "fsm":
		m, err := machineOf(wq.Machine)
		if err != nil {
			return nil, err
		}
		fq := modelir.FSMQuery{Machine: m}
		if wq.Prefilter {
			// The prefilter is sound only for the fire-ants machine.
			fq.Prefilter = modelir.FireAntsPrefilter
		}
		return fq, nil
	case "fsm-distance":
		m, err := machineOf(wq.Machine)
		if err != nil {
			return nil, err
		}
		return modelir.FSMDistanceQuery{Target: m, Horizon: wq.Horizon}, nil
	case "geology":
		seq := make([]modelir.Lithology, 0, len(wq.Sequence))
		for _, s := range wq.Sequence {
			l, err := lithologyOf(s)
			if err != nil {
				return nil, err
			}
			seq = append(seq, l)
		}
		method, err := methodOf(wq.Method)
		if err != nil {
			return nil, err
		}
		return modelir.GeologyQuery{
			Sequence:     seq,
			MaxGapFt:     wq.MaxGapFt,
			MinGamma:     wq.MinGamma,
			GammaRampAPI: wq.GammaRampAPI,
			Method:       method,
		}, nil
	case "knowledge":
		switch wq.Rules {
		case "", "hps":
			return modelir.KnowledgeQuery{Rules: modelir.HPSTileRules()}, nil
		default:
			return nil, fmt.Errorf("unknown rule set %q (built-in: hps)", wq.Rules)
		}
	default:
		return nil, fmt.Errorf("unknown query kind %q (want linear, scene, fsm, fsm-distance, geology, knowledge)", wq.Kind)
	}
}

func linearModelOf(wq wireQuery) (*modelir.LinearModel, error) {
	if len(wq.Coeffs) == 0 {
		return nil, errors.New("query needs coeffs")
	}
	attrs := wq.Attrs
	if len(attrs) == 0 {
		attrs = make([]string, len(wq.Coeffs))
		for i := range attrs {
			attrs[i] = fmt.Sprintf("x%d", i)
		}
	}
	return modelir.NewLinearModel(attrs, wq.Coeffs, wq.Intercept)
}

func machineOf(name string) (*modelir.Machine, error) {
	switch name {
	case "", "fireants":
		return modelir.FireAntsModel(), nil
	default:
		return nil, fmt.Errorf("unknown machine %q (built-in: fireants)", name)
	}
}

func lithologyOf(s string) (modelir.Lithology, error) {
	switch strings.ToLower(s) {
	case "shale":
		return modelir.Shale, nil
	case "sandstone":
		return modelir.Sandstone, nil
	case "siltstone":
		return modelir.Siltstone, nil
	case "limestone":
		return modelir.Limestone, nil
	default:
		return 0, fmt.Errorf("unknown lithology %q", s)
	}
}

func methodOf(s string) (modelir.GeologyMethod, error) {
	switch strings.ToLower(s) {
	case "", "dp":
		return modelir.GeoDP, nil
	case "brute":
		return modelir.GeoBruteForce, nil
	case "pruned":
		return modelir.GeoPruned, nil
	default:
		return 0, fmt.Errorf("unknown geology method %q (want dp, brute, pruned)", s)
	}
}

// wireAppend is the POST /append request shape: a dataset name plus
// exactly one non-empty payload (the payload kind must match the
// dataset's kind; scenes are not appendable). Token, when set, makes
// the append idempotent through the router role: a retried request
// carrying the same token returns the recorded outcome instead of
// appending twice.
type wireAppend struct {
	Dataset string                 `json:"dataset"`
	Tuples  [][]float64            `json:"tuples,omitempty"`
	Series  []modelir.RegionSeries `json:"series,omitempty"`
	Wells   []modelir.WellLog      `json:"wells,omitempty"`
	Token   string                 `json:"token,omitempty"`
}

// wireAppendResponse reports one append's outcome: rows accepted and
// the dataset's generation after the flush that carried them (clients
// can watch Gen advance on /stats). The router role also reports the
// owning partition, the batch's sequence number, whether a token replay
// was deduplicated, and any replicas the append quarantined.
type wireAppendResponse struct {
	Appended    int      `json:"appended"`
	Gen         uint64   `json:"gen"`
	Part        int      `json:"part,omitempty"`
	Seq         uint64   `json:"seq,omitempty"`
	Duplicate   bool     `json:"duplicate,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// backend is what the HTTP surface serves from: a local engine in the
// single role, a cluster router in the router role. Both return exact
// answers, so the endpoints and wire shapes are role-independent.
type backend interface {
	Run(ctx context.Context, req modelir.Request) (modelir.Result, error)
	RunBatch(ctx context.Context, reqs []modelir.Request) ([]modelir.BatchResult, error)
	// appendRows applies one /append body and reports its outcome.
	appendRows(ctx context.Context, wa wireAppend) (wireAppendResponse, error)
	// serverStats fills the role-specific part of /stats.
	serverStats() wireServerStats
}

// engineBackend serves from an in-process engine (the single role).
// Appends flow through one shared batching appender so concurrent
// small /append calls coalesce into one delta segment per flush
// window.
type engineBackend struct {
	engine   *modelir.Engine
	appender *modelir.Appender
}

// newEngineBackend wraps an engine with its serving appender.
func newEngineBackend(engine *modelir.Engine) engineBackend {
	return engineBackend{engine: engine, appender: modelir.NewAppender(engine, modelir.AppenderOptions{})}
}

func (b engineBackend) Run(ctx context.Context, req modelir.Request) (modelir.Result, error) {
	return b.engine.Run(ctx, req)
}

func (b engineBackend) RunBatch(ctx context.Context, reqs []modelir.Request) ([]modelir.BatchResult, error) {
	return b.engine.RunBatch(ctx, reqs)
}

func (b engineBackend) appendRows(ctx context.Context, wa wireAppend) (wireAppendResponse, error) {
	kinds := 0
	for _, nonEmpty := range []bool{len(wa.Tuples) > 0, len(wa.Series) > 0, len(wa.Wells) > 0} {
		if nonEmpty {
			kinds++
		}
	}
	if kinds != 1 {
		return wireAppendResponse{}, errors.New("append needs exactly one non-empty payload: tuples, series, or wells")
	}
	var kind string
	var err error
	switch {
	case len(wa.Tuples) > 0:
		kind, err = "tuples", b.appender.AppendTuples(ctx, wa.Dataset, wa.Tuples)
	case len(wa.Series) > 0:
		kind, err = "series", b.appender.AppendSeries(ctx, wa.Dataset, wa.Series)
	default:
		kind, err = "wells", b.appender.AppendWells(ctx, wa.Dataset, wa.Wells)
	}
	if err != nil {
		return wireAppendResponse{}, err
	}
	out := wireAppendResponse{Appended: len(wa.Tuples) + len(wa.Series) + len(wa.Wells)}
	for _, ds := range b.engine.Datasets() {
		if ds.Name == wa.Dataset && ds.Kind == kind {
			out.Gen = ds.Gen
		}
	}
	return out, nil
}

func (b engineBackend) serverStats() wireServerStats {
	var out wireServerStats
	out.Role = "single"
	out.Epoch = b.engine.Epoch()
	out.Shards = b.engine.NumShards()
	out.Datasets = b.engine.Datasets()
	cs := b.engine.CacheStats()
	out.Cache.Hits = cs.Hits
	out.Cache.Misses = cs.Misses
	out.Cache.Stores = cs.Stores
	out.Cache.Evictions = cs.Evictions
	out.Cache.Invalidations = cs.Invalidations
	out.Cache.Entries = cs.Entries
	return out
}

// routerBackend serves by scatter-gathering over cluster nodes (the
// router role). Results are bit-identical to the single role over the
// union of the partitions; caching and stats beyond the merge live on
// the nodes.
type routerBackend struct {
	router *modelir.ClusterRouter
	peers  int
}

func clusterRequest(req modelir.Request) modelir.ClusterRequest {
	return modelir.ClusterRequest{
		Dataset:  req.Dataset,
		Query:    req.Query,
		K:        req.K,
		Workers:  req.Workers,
		Budget:   req.Budget,
		MinScore: req.MinScore,
	}
}

func (b routerBackend) Run(ctx context.Context, req modelir.Request) (modelir.Result, error) {
	return b.router.Run(ctx, clusterRequest(req))
}

func (b routerBackend) RunBatch(ctx context.Context, reqs []modelir.Request) ([]modelir.BatchResult, error) {
	creqs := make([]modelir.ClusterRequest, len(reqs))
	for i, r := range reqs {
		creqs[i] = clusterRequest(r)
	}
	return b.router.RunBatch(ctx, creqs), nil
}

// appendRows routes the batch through the cluster write path: the
// router picks the owning partition, sequences the batch, and
// replicates it to every healthy replica (DESIGN.md §12).
func (b routerBackend) appendRows(ctx context.Context, wa wireAppend) (wireAppendResponse, error) {
	res, err := b.router.Append(ctx, modelir.ClusterAppendRequest{
		Dataset: wa.Dataset,
		Tuples:  wa.Tuples,
		Series:  wa.Series,
		Wells:   wa.Wells,
		Token:   wa.Token,
	})
	if err != nil {
		return wireAppendResponse{}, err
	}
	return wireAppendResponse{
		Appended:    res.Rows,
		Gen:         res.Gen,
		Part:        res.Part,
		Seq:         res.Seq,
		Duplicate:   res.Duplicate,
		Quarantined: res.Quarantined,
	}, nil
}

func (b routerBackend) serverStats() wireServerStats {
	out := wireServerStats{Role: "router", Peers: b.peers}
	health := b.router.PeerHealth()
	out.PeerHealth = make(map[string]string, len(health))
	for addr, st := range health {
		out.PeerHealth[addr] = st.String()
	}
	out.PeerErrors = b.router.PeerErrors()
	out.AppendSeqs = b.router.AppendSeqs()
	out.Degraded = b.router.Degraded()
	rs := b.router.ResyncStats()
	out.Resync = &rs
	return out
}

// degraded reports partitions serving below their full replica set;
// /healthz surfaces it without failing the probe.
func (b routerBackend) degraded() bool { return b.router.Degraded() }

// server bundles the backend with serving metadata. The backend may
// arrive after the listener is up (restore/build runs in the
// background at boot): handlers gate on the ready flag, and the
// atomic store in setBackend publishes the backend write to them.
type server struct {
	backend    backend
	snapshotFn func(context.Context) error // nil = persistence disabled
	snapMu     sync.Mutex                  // serializes on-demand snapshots
	ready      atomic.Bool
	started    time.Time
	mux        *http.ServeMux
}

// newServer routes the endpoints over a backend. A nil backend starts
// the server unready (503 everywhere but a truthful /healthz) until
// setBackend delivers one.
func newServer(b backend) *server {
	s := &server{started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/append", s.handleAppend)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/snapshot", s.handleSnapshot)
	s.mux = mux
	if b != nil {
		s.setBackend(b, nil)
	}
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// setBackend installs the serving backend (and the optional on-demand
// snapshot hook) and flips the server ready.
func (s *server) setBackend(b backend, snapshotFn func(context.Context) error) {
	s.backend = b
	s.snapshotFn = snapshotFn
	s.ready.Store(true)
}

// notReady answers 503 and reports true while the engine is still
// restoring or building.
func (s *server) notReady(w http.ResponseWriter) bool {
	if s.ready.Load() {
		return false
	}
	writeJSON(w, http.StatusServiceUnavailable, wireResult{Error: "engine not ready (restore/build in progress)"})
	return true
}

// degradedReporter is implemented by backends that can lose replicas
// (the router role): degraded reports any partition serving below its
// full healthy replica set.
type degradedReporter interface{ degraded() bool }

// handleHealthz is the readiness probe: 503 until the engine is
// serving, 200 after. A degraded router — some partition below its
// full replica set while resync or recovery runs — still answers 200
// with "degraded": true, because every query is still served exactly
// from the remaining replicas; the flag is the operator's cue, not a
// load-balancer eviction signal.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	ready := s.ready.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	resp := map[string]bool{"ready": ready}
	if ready {
		if dr, ok := s.backend.(degradedReporter); ok {
			resp["degraded"] = dr.degraded()
		}
	}
	writeJSON(w, status, resp)
}

// handleSnapshot persists the engine's current state to the -data-dir
// backend on demand.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.notReady(w) {
		return
	}
	if s.snapshotFn == nil {
		writeJSON(w, http.StatusNotFound, wireResult{Error: "persistence disabled (start with -data-dir)"})
		return
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	if err := s.snapshotFn(r.Context()); err != nil {
		writeJSON(w, http.StatusInternalServerError, wireResult{Error: "snapshot: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "wall_ns": time.Since(start).Nanoseconds()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed write means the client is gone
}

// statusClientClosedRequest is the de-facto status (nginx's 499) for a
// request abandoned by the client: not a server fault, not a 4xx the
// client can fix — just nobody left to answer.
const statusClientClosedRequest = 499

// statusOf maps engine and cluster errors onto HTTP statuses. Timeouts
// and cancellations get their own codes (504/499) so operators can tell
// an overloaded cluster from a malformed request in access logs.
func statusOf(err error) int {
	switch {
	case errors.Is(err, modelir.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, modelir.ErrPartitionUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusBadRequest
	}
}

// writeErr maps err onto its status and writes v. A 503 carries
// Retry-After: the partition is expected back as soon as a replica
// recovers or catches up, so well-behaved clients should retry, not
// give up.
func writeErr(w http.ResponseWriter, err error, v any) {
	status := statusOf(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, v)
}

// handleAppend grows a registered dataset under traffic: rows enter a
// delta segment via the shared batching appender and are queryable the
// moment the response is written.
func (s *server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.notReady(w) {
		return
	}
	var wa wireAppend
	if err := json.NewDecoder(r.Body).Decode(&wa); err != nil {
		writeJSON(w, http.StatusBadRequest, wireAppendResponse{Error: "bad append JSON: " + err.Error()})
		return
	}
	resp, err := s.backend.appendRows(r.Context(), wa)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; the rows still flush, but nobody is listening
		}
		writeErr(w, err, wireAppendResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.notReady(w) {
		return
	}
	var wr wireRequest
	if err := json.NewDecoder(r.Body).Decode(&wr); err != nil {
		writeJSON(w, http.StatusBadRequest, wireResult{Error: "bad request JSON: " + err.Error()})
		return
	}
	req, err := compileRequest(wr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wireResult{Error: err.Error()})
		return
	}
	// r.Context() ends when the client disconnects: the engine aborts
	// the fan-out mid-shard and we have nobody left to answer.
	res, err := s.backend.Run(r.Context(), req)
	if err != nil {
		if r.Context().Err() != nil {
			return // client gone; the response writer is dead
		}
		writeErr(w, err, wireResult{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, toWireResult(res, nil))
}

// wireBatch is the /batch request and response envelope.
type wireBatch struct {
	Requests []wireRequest `json:"requests"`
}

type wireBatchResponse struct {
	Results []wireResult `json:"results"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.notReady(w) {
		return
	}
	var wb wireBatch
	if err := json.NewDecoder(r.Body).Decode(&wb); err != nil {
		writeJSON(w, http.StatusBadRequest, wireResult{Error: "bad batch JSON: " + err.Error()})
		return
	}
	reqs := make([]modelir.Request, len(wb.Requests))
	compileErrs := make([]error, len(wb.Requests))
	for i, wr := range wb.Requests {
		reqs[i], compileErrs[i] = compileRequest(wr)
	}
	// Compile failures ride along as per-slot errors: the engine skips
	// nil-query requests with a validation error in the same slot.
	batch, err := s.backend.RunBatch(r.Context(), reqs)
	if err != nil && r.Context().Err() != nil {
		return // client gone
	}
	resp := wireBatchResponse{Results: make([]wireResult, len(batch))}
	for i, br := range batch {
		switch {
		case compileErrs[i] != nil:
			resp.Results[i] = wireResult{Error: compileErrs[i].Error()}
		case br.Err != nil:
			resp.Results[i] = wireResult{Error: br.Err.Error()}
		default:
			resp.Results[i] = toWireResult(br.Result, nil)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// wireServerStats is the /stats response. Role-specific fields are
// zero for the roles they do not apply to: a router has no engine
// epoch, shards, or cache; a single engine has no peers.
type wireServerStats struct {
	Role string `json:"role"`
	// Router role: peer count, each peer's health state, and every
	// sequenced dataset partition's last append sequence number.
	Peers      int                         `json:"peers,omitempty"`
	PeerHealth map[string]string           `json:"peer_health,omitempty"`
	PeerErrors map[string]string           `json:"peer_errors,omitempty"`
	AppendSeqs map[string]map[int]uint64   `json:"append_seqs,omitempty"`
	Degraded   bool                        `json:"degraded,omitempty"`
	Resync     *modelir.ClusterResyncStats `json:"resync,omitempty"`
	UptimeS    float64                     `json:"uptime_s"`
	Epoch      uint64                      `json:"epoch"`
	Shards     int                         `json:"shards"`
	GOMAXPROCS int                         `json:"gomaxprocs"`
	Datasets   []modelir.DatasetInfo       `json:"datasets,omitempty"`
	Cache      struct {
		Hits          uint64 `json:"hits"`
		Misses        uint64 `json:"misses"`
		Stores        uint64 `json:"stores"`
		Evictions     uint64 `json:"evictions"`
		Invalidations uint64 `json:"invalidations"`
		Entries       int    `json:"entries"`
	} `json:"cache"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if s.notReady(w) {
		return
	}
	out := s.backend.serverStats()
	out.UptimeS = time.Since(s.started).Seconds()
	out.GOMAXPROCS = runtime.GOMAXPROCS(0)
	writeJSON(w, http.StatusOK, out)
}
