// modelird is the model-retrieval serving daemon: an HTTP front end
// over the sharded, cached, admission-controlled engine, loaded at
// startup with deterministic synthetic demo archives (one per model
// family).
//
// Usage:
//
//	modelird [-addr :8077] [-shards 0] [-cache 0] [-maxworkers 0]
//	         [-tuples 20000] [-scene 128] [-regions 300] [-wells 200]
//	         [-debug-addr 127.0.0.1:6060]
//
// -debug-addr mounts net/http/pprof (profiles, goroutine dumps,
// /debug/pprof/…) on a SEPARATE listener so the profiling surface is
// opt-in and never shares a port with serving traffic; empty (the
// default) disables it entirely.
//
// Endpoints (JSON):
//
//	POST /run    one request:   {"dataset":"tuples","k":5,
//	             "query":{"kind":"linear","coeffs":[0.4,0.3,0.3]}}
//	POST /batch  many requests: {"requests":[...]} — deduped, cached,
//	             and executed per family on one shared worker pool
//	GET  /stats  cache counters, epoch, uptime
//
// Query kinds: linear, scene, fsm, fsm-distance, geology, knowledge
// (see the wire shapes in server.go). Requests are cancelled when the
// client disconnects.
//
// Demo datasets: "tuples" (Gaussian rows, linear), "scene" (Landsat-
// like raster, scene + knowledge), "weather" (regional daily series,
// fsm + fsm-distance), "basin" (well logs, geology).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"modelir"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelird:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelird", flag.ContinueOnError)
	addr := fs.String("addr", ":8077", "listen address")
	shards := fs.Int("shards", 0, "shards per dataset (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "result cache entries (0 = default, <0 = disabled)")
	maxWorkers := fs.Int("maxworkers", 0, "admission budget: total fan-out workers in flight (0 = default, <0 = unbounded)")
	tuples := fs.Int("tuples", 20000, "demo tuple archive rows")
	scene := fs.Int("scene", 128, "demo scene width and height")
	regions := fs.Int("regions", 300, "demo weather archive regions")
	wells := fs.Int("wells", 200, "demo well archive size")
	seed := fs.Int64("seed", 7, "demo data generator seed")
	debugAddr := fs.String("debug-addr", "", "opt-in pprof listener (e.g. 127.0.0.1:6060); empty disables the debug surface")
	if err := fs.Parse(args); err != nil {
		return err
	}

	engine, err := buildEngine(demoConfig{
		Shards: *shards, Cache: *cache, MaxWorkers: *maxWorkers,
		Tuples: *tuples, Scene: *scene, Regions: *regions, Wells: *wells, Seed: *seed,
	})
	if err != nil {
		return err
	}

	if *debugAddr != "" {
		// Bind synchronously: the debug surface is an explicit opt-in,
		// so a taken port or a typo'd address must fail startup, not
		// degrade into a daemon that silently cannot be profiled.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener %s: %w", *debugAddr, err)
		}
		dbg := &http.Server{
			Handler:           newDebugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		log.Printf("modelird debug (pprof) listening on %s", ln.Addr())
		go func() {
			if err := dbg.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("modelird debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(engine),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("modelird listening on %s (tuples=%d scene=%dx%d regions=%d wells=%d)",
		*addr, *tuples, *scene, *scene, *regions, *wells)
	return srv.ListenAndServe()
}

// newDebugMux builds the opt-in profiling surface: the standard
// net/http/pprof handlers on a private mux (never the DefaultServeMux,
// and never mounted on the serving listener).
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// demoConfig sizes the synthetic archives the daemon serves.
type demoConfig struct {
	Shards, Cache, MaxWorkers     int
	Tuples, Scene, Regions, Wells int
	Seed                          int64
}

// buildEngine registers the four demo archives, one per model family.
func buildEngine(cfg demoConfig) (*modelir.Engine, error) {
	e := modelir.NewEngineWithOptions(modelir.EngineOptions{
		Shards:       cfg.Shards,
		CacheEntries: cfg.Cache,
		MaxWorkers:   cfg.MaxWorkers,
	})
	pts, err := modelir.GenerateTuples(cfg.Seed, cfg.Tuples, 3)
	if err != nil {
		return nil, fmt.Errorf("tuples: %w", err)
	}
	if err := e.AddTuples("tuples", pts); err != nil {
		return nil, err
	}
	sc, err := modelir.GenerateScene(modelir.SceneConfig{Seed: cfg.Seed + 1, W: cfg.Scene, H: cfg.Scene})
	if err != nil {
		return nil, fmt.Errorf("scene: %w", err)
	}
	arch, err := modelir.BuildSceneArchive("scene", sc.Bands, modelir.ArchiveOptions{})
	if err != nil {
		return nil, fmt.Errorf("scene archive: %w", err)
	}
	if err := e.AddScene("scene", arch); err != nil {
		return nil, err
	}
	weather, err := modelir.GenerateWeather(modelir.WeatherConfig{
		Seed: cfg.Seed + 2, Regions: cfg.Regions, Days: 365,
	})
	if err != nil {
		return nil, fmt.Errorf("weather: %w", err)
	}
	if err := e.AddSeries("weather", weather); err != nil {
		return nil, err
	}
	ws, _, err := modelir.GenerateWells(modelir.WellConfig{Seed: cfg.Seed + 3, Wells: cfg.Wells})
	if err != nil {
		return nil, fmt.Errorf("wells: %w", err)
	}
	if err := e.AddWells("basin", ws); err != nil {
		return nil, err
	}
	return e, nil
}
