// modelird is the model-retrieval serving daemon: an HTTP front end
// over the sharded, cached, admission-controlled engine, loaded at
// startup with deterministic synthetic demo archives (one per model
// family).
//
// Usage:
//
//	modelird [-role single] [-addr :8077] [-shards 0] [-cache 0]
//	         [-maxworkers 0] [-tuples 20000] [-scene 128]
//	         [-regions 300] [-wells 200] [-debug-addr 127.0.0.1:6060]
//
// -debug-addr mounts net/http/pprof (profiles, goroutine dumps,
// /debug/pprof/…) on a SEPARATE listener so the profiling surface is
// opt-in and never shares a port with serving traffic; empty (the
// default) disables it entirely.
//
// Roles (DESIGN.md §9): the default "single" serves everything from an
// in-process engine. A cluster splits the same daemon into shard
// servers and a front end:
//
//	modelird -role=node -addr 127.0.0.1:9001 \
//	         -peers 127.0.0.1:9001,127.0.0.1:9002 [-self 127.0.0.1:9001]
//	modelird -role=router -addr :8077 \
//	         -peers 127.0.0.1:9001,127.0.0.1:9002 [-replication 1]
//
// Every node and the router must be given the same -peers list and
// -replication: placement is consistent-hashed from them, so they ARE
// the cluster configuration. Nodes generate the same demo archives and
// keep only their assigned partitions; the router serves the usual
// HTTP endpoints and scatter-gathers each query, returning answers
// bit-identical to -role=single over the same archives.
//
// Endpoints (JSON):
//
//	POST /run    one request:   {"dataset":"tuples","k":5,
//	             "query":{"kind":"linear","coeffs":[0.4,0.3,0.3]}}
//	POST /batch  many requests: {"requests":[...]} — deduped, cached,
//	             and executed per family on one shared worker pool
//	GET  /stats  cache counters, epoch, uptime
//
// Query kinds: linear, scene, fsm, fsm-distance, geology, knowledge
// (see the wire shapes in server.go). Requests are cancelled when the
// client disconnects.
//
// Demo datasets: "tuples" (Gaussian rows, linear), "scene" (Landsat-
// like raster, scene + knowledge), "weather" (regional daily series,
// fsm + fsm-distance), "basin" (well logs, geology).
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"modelir"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelird:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelird", flag.ContinueOnError)
	role := fs.String("role", "single", "serving role: single, router, or node")
	addr := fs.String("addr", ":8077", "listen address")
	peers := fs.String("peers", "", "comma-separated node addresses, identical on every router and node (cluster roles)")
	self := fs.String("self", "", "this node's address in -peers (node role; defaults to -addr)")
	replication := fs.Int("replication", 1, "replicas per partition, identical on every router and node (cluster roles)")
	shards := fs.Int("shards", 0, "shards per dataset (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "result cache entries (0 = default, <0 = disabled)")
	maxWorkers := fs.Int("maxworkers", 0, "admission budget: total fan-out workers in flight (0 = default, <0 = unbounded)")
	tuples := fs.Int("tuples", 20000, "demo tuple archive rows")
	scene := fs.Int("scene", 128, "demo scene width and height")
	regions := fs.Int("regions", 300, "demo weather archive regions")
	wells := fs.Int("wells", 200, "demo well archive size")
	seed := fs.Int64("seed", 7, "demo data generator seed")
	debugAddr := fs.String("debug-addr", "", "opt-in pprof listener (e.g. 127.0.0.1:6060); empty disables the debug surface")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := demoConfig{
		Shards: *shards, Cache: *cache, MaxWorkers: *maxWorkers,
		Tuples: *tuples, Scene: *scene, Regions: *regions, Wells: *wells, Seed: *seed,
	}

	var b backend
	switch *role {
	case "single":
		engine, err := buildEngine(cfg)
		if err != nil {
			return err
		}
		b = engineBackend{engine: engine}
	case "router":
		topo, err := topologyOf(*peers, *replication)
		if err != nil {
			return err
		}
		b = routerBackend{router: modelir.NewClusterRouter(topo), peers: len(topo.Nodes)}
	case "node":
		topo, err := topologyOf(*peers, *replication)
		if err != nil {
			return err
		}
		return runNode(topo, *addr, *self, cfg)
	default:
		return fmt.Errorf("unknown -role %q (want single, router, or node)", *role)
	}

	if *debugAddr != "" {
		// Bind synchronously: the debug surface is an explicit opt-in,
		// so a taken port or a typo'd address must fail startup, not
		// degrade into a daemon that silently cannot be profiled.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener %s: %w", *debugAddr, err)
		}
		dbg := &http.Server{
			Handler:           newDebugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		log.Printf("modelird debug (pprof) listening on %s", ln.Addr())
		go func() {
			if err := dbg.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("modelird debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(b),
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("modelird %s listening on %s (tuples=%d scene=%dx%d regions=%d wells=%d)",
		*role, *addr, *tuples, *scene, *scene, *regions, *wells)
	return srv.ListenAndServe()
}

// topologyOf parses the shared cluster configuration flags.
func topologyOf(peers string, replication int) (modelir.ClusterTopology, error) {
	var nodes []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			nodes = append(nodes, p)
		}
	}
	if len(nodes) == 0 {
		return modelir.ClusterTopology{}, errors.New("cluster roles need -peers (comma-separated node addresses)")
	}
	return modelir.ClusterTopology{Nodes: nodes, Replication: replication}, nil
}

// runNode builds this node's partitions of the demo archives and serves
// them until the process is killed.
func runNode(topo modelir.ClusterTopology, addr, self string, cfg demoConfig) error {
	if self == "" {
		self = addr
	}
	found := false
	for _, p := range topo.Nodes {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("node address %q is not in -peers %v (set -self if -addr differs)", self, topo.Nodes)
	}
	n := modelir.NewClusterNode(self, topo, modelir.ClusterNodeOptions{
		Shards:       cfg.Shards,
		CacheEntries: cfg.Cache,
	})
	data, err := buildDemoData(cfg)
	if err != nil {
		return err
	}
	if err := n.AddTuples("tuples", data.pts); err != nil {
		return err
	}
	if err := n.AddScene("scene", data.scene); err != nil {
		return err
	}
	if err := n.AddSeries("weather", data.weather); err != nil {
		return err
	}
	if err := n.AddWells("basin", data.wells); err != nil {
		return err
	}
	if err := n.Serve(addr); err != nil {
		return err
	}
	log.Printf("modelird node %s serving on %s (%d peers, replication %d)",
		self, n.Addr(), len(topo.Nodes), topo.Replication)
	select {} // serve until killed
}

// newDebugMux builds the opt-in profiling surface: the standard
// net/http/pprof handlers on a private mux (never the DefaultServeMux,
// and never mounted on the serving listener).
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// demoConfig sizes the synthetic archives the daemon serves.
type demoConfig struct {
	Shards, Cache, MaxWorkers     int
	Tuples, Scene, Regions, Wells int
	Seed                          int64
}

// demoData holds the generated demo archives, ready to ingest into an
// engine (single role) or a cluster node (node role, which keeps only
// its assigned partitions).
type demoData struct {
	pts     [][]float64
	scene   *modelir.SceneArchive
	weather []modelir.RegionSeries
	wells   []modelir.WellLog
}

// buildDemoData generates the four demo archives, one per model family.
// The generators are deterministic in cfg, so every node of a cluster
// derives the same archives and placement slices them consistently.
func buildDemoData(cfg demoConfig) (demoData, error) {
	var d demoData
	var err error
	if d.pts, err = modelir.GenerateTuples(cfg.Seed, cfg.Tuples, 3); err != nil {
		return d, fmt.Errorf("tuples: %w", err)
	}
	sc, err := modelir.GenerateScene(modelir.SceneConfig{Seed: cfg.Seed + 1, W: cfg.Scene, H: cfg.Scene})
	if err != nil {
		return d, fmt.Errorf("scene: %w", err)
	}
	if d.scene, err = modelir.BuildSceneArchive("scene", sc.Bands, modelir.ArchiveOptions{}); err != nil {
		return d, fmt.Errorf("scene archive: %w", err)
	}
	if d.weather, err = modelir.GenerateWeather(modelir.WeatherConfig{
		Seed: cfg.Seed + 2, Regions: cfg.Regions, Days: 365,
	}); err != nil {
		return d, fmt.Errorf("weather: %w", err)
	}
	if d.wells, _, err = modelir.GenerateWells(modelir.WellConfig{Seed: cfg.Seed + 3, Wells: cfg.Wells}); err != nil {
		return d, fmt.Errorf("wells: %w", err)
	}
	return d, nil
}

// buildEngine registers the demo archives on an in-process engine.
func buildEngine(cfg demoConfig) (*modelir.Engine, error) {
	e := modelir.NewEngineWithOptions(modelir.EngineOptions{
		Shards:       cfg.Shards,
		CacheEntries: cfg.Cache,
		MaxWorkers:   cfg.MaxWorkers,
	})
	data, err := buildDemoData(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.AddTuples("tuples", data.pts); err != nil {
		return nil, err
	}
	if err := e.AddScene("scene", data.scene); err != nil {
		return nil, err
	}
	if err := e.AddSeries("weather", data.weather); err != nil {
		return nil, err
	}
	if err := e.AddWells("basin", data.wells); err != nil {
		return nil, err
	}
	return e, nil
}
