// modelird is the model-retrieval serving daemon: an HTTP front end
// over the sharded, cached, admission-controlled engine, loaded at
// startup with deterministic synthetic demo archives (one per model
// family).
//
// Usage:
//
//	modelird [-role single] [-addr :8077] [-shards 0] [-cache 0]
//	         [-maxworkers 0] [-tuples 20000] [-scene 128]
//	         [-regions 300] [-wells 200] [-data-dir /var/lib/modelird]
//	         [-debug-addr 127.0.0.1:6060]
//
// -debug-addr mounts net/http/pprof (profiles, goroutine dumps,
// /debug/pprof/…) on a SEPARATE listener so the profiling surface is
// opt-in and never shares a port with serving traffic; empty (the
// default) disables it entirely.
//
// -data-dir enables durable snapshots (DESIGN.md §10): at boot the
// daemon restores the engine from a snapshot in that directory if one
// is present (mmap'd in place when the host supports it, so cold start
// skips every index build), or builds the demo archives and writes an
// initial snapshot when it is empty. POST /admin/snapshot persists the
// current state on demand. A corrupt snapshot fails boot with a typed
// error — it is never silently rebuilt over. The HTTP listener comes
// up before restore/build finishes; poll GET /healthz (503 → 200) to
// wait for serving readiness.
//
// Roles (DESIGN.md §9): the default "single" serves everything from an
// in-process engine. A cluster splits the same daemon into shard
// servers and a front end:
//
//	modelird -role=node -addr 127.0.0.1:9001 \
//	         -peers 127.0.0.1:9001,127.0.0.1:9002 [-self 127.0.0.1:9001]
//	modelird -role=router -addr :8077 \
//	         -peers 127.0.0.1:9001,127.0.0.1:9002 [-replication 1] \
//	         [-log-cap-bytes 0]
//
// Every node and the router must be given the same -peers list and
// -replication: placement is consistent-hashed from them, so they ARE
// the cluster configuration. Nodes generate the same demo archives and
// keep only their assigned partitions; the router serves the usual
// HTTP endpoints and scatter-gathers each query, returning answers
// bit-identical to -role=single over the same archives.
//
// Endpoints (JSON):
//
//	POST /run    one request:   {"dataset":"tuples","k":5,
//	             "query":{"kind":"linear","coeffs":[0.4,0.3,0.3]}}
//	POST /batch  many requests: {"requests":[...]} — deduped, cached,
//	             and executed per family on one shared worker pool
//	POST /append grow a dataset under traffic:
//	             {"dataset":"tuples","tuples":[[1,2,3]]} — rows land in
//	             a delta segment, queryable on return. The single role
//	             coalesces concurrent calls through a batching appender;
//	             the router role sequences the batch and replicates it
//	             to every replica of the owning partition (optional
//	             "token" makes client retries idempotent)
//	GET  /stats  cache counters, epoch, uptime, registered datasets
//	             (per-dataset cache generation and live delta count)
//	GET  /healthz          readiness: 503 while restoring/building, 200 serving
//	POST /admin/snapshot   persist current state to -data-dir on demand
//
// Query kinds: linear, scene, fsm, fsm-distance, geology, knowledge
// (see the wire shapes in server.go). Requests are cancelled when the
// client disconnects.
//
// Demo datasets: "tuples" (Gaussian rows, linear), "scene" (Landsat-
// like raster, scene + knowledge), "weather" (regional daily series,
// fsm + fsm-distance), "basin" (well logs, geology).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"modelir"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelird:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("modelird", flag.ContinueOnError)
	role := fs.String("role", "single", "serving role: single, router, or node")
	addr := fs.String("addr", ":8077", "listen address")
	peers := fs.String("peers", "", "comma-separated node addresses, identical on every router and node (cluster roles)")
	self := fs.String("self", "", "this node's address in -peers (node role; defaults to -addr)")
	replication := fs.Int("replication", 1, "replicas per partition, identical on every router and node (cluster roles)")
	shards := fs.Int("shards", 0, "shards per dataset (0 = GOMAXPROCS)")
	cache := fs.Int("cache", 0, "result cache entries (0 = default, <0 = disabled)")
	maxWorkers := fs.Int("maxworkers", 0, "admission budget: total fan-out workers in flight (0 = default, <0 = unbounded)")
	tuples := fs.Int("tuples", 20000, "demo tuple archive rows")
	scene := fs.Int("scene", 128, "demo scene width and height")
	regions := fs.Int("regions", 300, "demo weather archive regions")
	wells := fs.Int("wells", 200, "demo well archive size")
	seed := fs.Int64("seed", 7, "demo data generator seed")
	logCap := fs.Int64("log-cap-bytes", 0, "router role: per-partition append-log cap in bytes; exceeding it while a replica is quarantined forces snapshot resync instead of unbounded log growth (0 = 64 MiB default, <0 = unlimited)")
	dataDir := fs.String("data-dir", "", "snapshot directory: restore at boot when a snapshot is present, write one after a fresh build, serve POST /admin/snapshot; empty disables persistence")
	debugAddr := fs.String("debug-addr", "", "opt-in pprof listener (e.g. 127.0.0.1:6060); empty disables the debug surface")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := demoConfig{
		Shards: *shards, Cache: *cache, MaxWorkers: *maxWorkers,
		Tuples: *tuples, Scene: *scene, Regions: *regions, Wells: *wells, Seed: *seed,
	}

	var s *server
	var buildErr chan error // nil (never fires) except in the single role
	switch *role {
	case "single":
		// Bring the listener up unready and restore/build in the
		// background: /healthz flips 503 → 200 when the engine is
		// serving, so routers and smoke tests wait deterministically.
		s = newServer(nil)
		buildErr = make(chan error, 1)
		go func(s *server, dir string) {
			engine, snapFn, err := openOrBuildEngine(cfg, dir)
			if err != nil {
				buildErr <- err
				return
			}
			s.setBackend(newEngineBackend(engine), snapFn)
			log.Printf("modelird single ready (%d datasets)", len(engine.Datasets()))
		}(s, *dataDir)
	case "router":
		topo, err := topologyOf(*peers, *replication)
		if err != nil {
			return err
		}
		r := modelir.NewClusterRouterWith(topo, modelir.ClusterRouterOptions{MaxLogBytes: *logCap})
		// Crash recovery (DESIGN.md §13): re-learn per-partition append
		// cursors and the global row watermark from the replicas before
		// serving, so a router restarted mid-ingest never reuses a
		// global ID range. Best-effort — the append path re-learns
		// lazily if every node is still booting.
		if err := r.SyncIngest(context.Background()); err != nil {
			log.Printf("modelird router: ingest recovery sync: %v (append paths re-learn lazily)", err)
		}
		// Background health passes probe every peer and walk reachable
		// stale replicas through catch-up, so a recovered node re-admits
		// itself without operator action.
		r.StartHealthLoop(2 * time.Second)
		s = newServer(routerBackend{router: r, peers: len(topo.Nodes)})
	case "node":
		topo, err := topologyOf(*peers, *replication)
		if err != nil {
			return err
		}
		return runNode(topo, *addr, *self, cfg, *dataDir)
	default:
		return fmt.Errorf("unknown -role %q (want single, router, or node)", *role)
	}

	if *debugAddr != "" {
		// Bind synchronously: the debug surface is an explicit opt-in,
		// so a taken port or a typo'd address must fail startup, not
		// degrade into a daemon that silently cannot be profiled.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener %s: %w", *debugAddr, err)
		}
		dbg := &http.Server{
			Handler:           newDebugMux(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		log.Printf("modelird debug (pprof) listening on %s", ln.Addr())
		go func() {
			if err := dbg.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("modelird debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	log.Printf("modelird %s listening on %s (tuples=%d scene=%dx%d regions=%d wells=%d)",
		*role, *addr, *tuples, *scene, *scene, *regions, *wells)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	select {
	case err := <-buildErr:
		return err
	case err := <-serveErr:
		return err
	}
}

// openOrBuildEngine is the single role's boot path: restore from
// -data-dir when a snapshot is there, otherwise build the demo
// archives (and, with persistence enabled, write the initial snapshot
// so the next boot restores). The returned function persists the
// engine on demand; it is nil when persistence is disabled.
func openOrBuildEngine(cfg demoConfig, dataDir string) (*modelir.Engine, func(context.Context) error, error) {
	if dataDir == "" {
		e, err := buildEngine(cfg)
		return e, nil, err
	}
	dir, err := modelir.NewSnapshotDir(dataDir)
	if err != nil {
		return nil, nil, err
	}
	opts := modelir.EngineOptions{CacheEntries: cfg.Cache, MaxWorkers: cfg.MaxWorkers}
	e, mode, err := restoreEngine(dir, opts)
	switch {
	case err == nil:
		log.Printf("modelird restored engine from %s (%s mode)", dataDir, mode)
	case errors.Is(err, modelir.ErrNoSnapshot):
		if e, err = buildEngine(cfg); err != nil {
			return nil, nil, err
		}
		if err := e.Snapshot(context.Background(), dir); err != nil {
			return nil, nil, fmt.Errorf("write initial snapshot to %s: %w", dataDir, err)
		}
		log.Printf("modelird built demo archives and wrote snapshot to %s", dataDir)
	default:
		// Corruption is refused, never rebuilt over: the operator
		// decides whether the snapshot is evidence or garbage.
		return nil, nil, fmt.Errorf("restore from %s: %w (move the directory aside to rebuild)", dataDir, err)
	}
	return e, func(ctx context.Context) error { return e.Snapshot(ctx, dir) }, nil
}

// restoreEngine opens a snapshot mmap'd when the host supports it,
// falling back to a copying restore.
func restoreEngine(dir *modelir.SnapshotDir, opts modelir.EngineOptions) (*modelir.Engine, modelir.RestoreMode, error) {
	e, err := modelir.OpenSnapshot(dir, modelir.RestoreOptions{Mode: modelir.RestoreMap, Options: opts})
	if err == nil {
		return e, modelir.RestoreMap, nil
	}
	if errors.Is(err, modelir.ErrMapUnsupported) {
		e, err = modelir.OpenSnapshot(dir, modelir.RestoreOptions{Mode: modelir.RestoreCopy, Options: opts})
		return e, modelir.RestoreCopy, err
	}
	return nil, modelir.RestoreCopy, err
}

// topologyOf parses the shared cluster configuration flags.
func topologyOf(peers string, replication int) (modelir.ClusterTopology, error) {
	var nodes []string
	for _, p := range strings.Split(peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			nodes = append(nodes, p)
		}
	}
	if len(nodes) == 0 {
		return modelir.ClusterTopology{}, errors.New("cluster roles need -peers (comma-separated node addresses)")
	}
	return modelir.ClusterTopology{Nodes: nodes, Replication: replication}, nil
}

// runNode serves this node's partitions of the demo archives until the
// process is killed, restoring them from -data-dir when a snapshot is
// present (placement metadata validated against the boot topology) and
// building + snapshotting otherwise.
func runNode(topo modelir.ClusterTopology, addr, self string, cfg demoConfig, dataDir string) error {
	if self == "" {
		self = addr
	}
	found := false
	for _, p := range topo.Nodes {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("node address %q is not in -peers %v (set -self if -addr differs)", self, topo.Nodes)
	}
	opt := modelir.ClusterNodeOptions{Shards: cfg.Shards, CacheEntries: cfg.Cache}
	var n *modelir.ClusterNode
	if dataDir != "" {
		dir, err := modelir.NewSnapshotDir(dataDir)
		if err != nil {
			return err
		}
		n, err = restoreNode(self, topo, opt, dir)
		switch {
		case err == nil:
			log.Printf("modelird node %s restored partitions from %s", self, dataDir)
		case errors.Is(err, modelir.ErrNoSnapshot):
			if n, err = buildNode(self, topo, opt, cfg); err != nil {
				return err
			}
			if err := n.Snapshot(context.Background(), dir); err != nil {
				return fmt.Errorf("write initial node snapshot to %s: %w", dataDir, err)
			}
			log.Printf("modelird node %s built partitions and wrote snapshot to %s", self, dataDir)
		default:
			return fmt.Errorf("restore node from %s: %w (move the directory aside to rebuild)", dataDir, err)
		}
	} else {
		var err error
		if n, err = buildNode(self, topo, opt, cfg); err != nil {
			return err
		}
	}
	if err := n.Serve(addr); err != nil {
		return err
	}
	log.Printf("modelird node %s serving on %s (%d peers, replication %d)",
		self, n.Addr(), len(topo.Nodes), topo.Replication)
	select {} // serve until killed
}

// buildNode generates the demo archives and ingests this node's
// assigned partitions.
func buildNode(self string, topo modelir.ClusterTopology, opt modelir.ClusterNodeOptions, cfg demoConfig) (*modelir.ClusterNode, error) {
	n := modelir.NewClusterNode(self, topo, opt)
	data, err := buildDemoData(cfg)
	if err != nil {
		return nil, err
	}
	if err := n.AddTuples("tuples", data.pts); err != nil {
		return nil, err
	}
	if err := n.AddScene("scene", data.scene); err != nil {
		return nil, err
	}
	if err := n.AddSeries("weather", data.weather); err != nil {
		return nil, err
	}
	if err := n.AddWells("basin", data.wells); err != nil {
		return nil, err
	}
	return n, nil
}

// restoreNode restores a shard server mmap'd when the host supports
// it, falling back to a copying restore.
func restoreNode(self string, topo modelir.ClusterTopology, opt modelir.ClusterNodeOptions, dir *modelir.SnapshotDir) (*modelir.ClusterNode, error) {
	n, err := modelir.RestoreClusterNode(self, topo, opt, dir, modelir.RestoreMap)
	if err != nil && errors.Is(err, modelir.ErrMapUnsupported) {
		return modelir.RestoreClusterNode(self, topo, opt, dir, modelir.RestoreCopy)
	}
	return n, err
}

// newDebugMux builds the opt-in profiling surface: the standard
// net/http/pprof handlers on a private mux (never the DefaultServeMux,
// and never mounted on the serving listener).
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// demoConfig sizes the synthetic archives the daemon serves.
type demoConfig struct {
	Shards, Cache, MaxWorkers     int
	Tuples, Scene, Regions, Wells int
	Seed                          int64
}

// demoData holds the generated demo archives, ready to ingest into an
// engine (single role) or a cluster node (node role, which keeps only
// its assigned partitions).
type demoData struct {
	pts     [][]float64
	scene   *modelir.SceneArchive
	weather []modelir.RegionSeries
	wells   []modelir.WellLog
}

// buildDemoData generates the four demo archives, one per model family.
// The generators are deterministic in cfg, so every node of a cluster
// derives the same archives and placement slices them consistently.
func buildDemoData(cfg demoConfig) (demoData, error) {
	var d demoData
	var err error
	if d.pts, err = modelir.GenerateTuples(cfg.Seed, cfg.Tuples, 3); err != nil {
		return d, fmt.Errorf("tuples: %w", err)
	}
	sc, err := modelir.GenerateScene(modelir.SceneConfig{Seed: cfg.Seed + 1, W: cfg.Scene, H: cfg.Scene})
	if err != nil {
		return d, fmt.Errorf("scene: %w", err)
	}
	if d.scene, err = modelir.BuildSceneArchive("scene", sc.Bands, modelir.ArchiveOptions{}); err != nil {
		return d, fmt.Errorf("scene archive: %w", err)
	}
	if d.weather, err = modelir.GenerateWeather(modelir.WeatherConfig{
		Seed: cfg.Seed + 2, Regions: cfg.Regions, Days: 365,
	}); err != nil {
		return d, fmt.Errorf("weather: %w", err)
	}
	if d.wells, _, err = modelir.GenerateWells(modelir.WellConfig{Seed: cfg.Seed + 3, Wells: cfg.Wells}); err != nil {
		return d, fmt.Errorf("wells: %w", err)
	}
	return d, nil
}

// buildEngine registers the demo archives on an in-process engine.
func buildEngine(cfg demoConfig) (*modelir.Engine, error) {
	e := modelir.NewEngineWithOptions(modelir.EngineOptions{
		Shards:       cfg.Shards,
		CacheEntries: cfg.Cache,
		MaxWorkers:   cfg.MaxWorkers,
	})
	data, err := buildDemoData(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.AddTuples("tuples", data.pts); err != nil {
		return nil, err
	}
	if err := e.AddScene("scene", data.scene); err != nil {
		return nil, err
	}
	if err := e.AddSeries("weather", data.weather); err != nil {
		return nil, err
	}
	if err := e.AddWells("basin", data.wells); err != nil {
		return nil, err
	}
	return e, nil
}
