package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"

	"modelir"
)

// testEngine builds a small demo engine shared by the endpoint tests.
func testEngine(t *testing.T) *modelir.Engine {
	t.Helper()
	e, err := buildEngine(demoConfig{
		Shards: 4, Tuples: 3000, Scene: 32, Regions: 40, Wells: 30, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// wireRequests covers every family through the wire format.
func wireRequests() []wireRequest {
	min := 0.5
	return []wireRequest{
		{Dataset: "tuples", K: 5, Query: wireQuery{Kind: "linear", Coeffs: []float64{0.4, 0.3, 0.3}}},
		{Dataset: "scene", K: 5, Query: wireQuery{Kind: "scene"}},
		{Dataset: "weather", K: 5, Query: wireQuery{Kind: "fsm", Prefilter: true}},
		{Dataset: "weather", K: 5, Query: wireQuery{Kind: "fsm-distance", Horizon: 6}},
		{Dataset: "basin", K: 5, Query: wireQuery{
			Kind: "geology", Sequence: []string{"shale", "sandstone"},
			MaxGapFt: 10, MinGamma: 45, Method: "pruned",
		}},
		{Dataset: "scene", K: 5, Query: wireQuery{Kind: "knowledge", Rules: "hps"}},
		{Dataset: "tuples", K: 3, MinScore: &min, Query: wireQuery{Kind: "linear", Coeffs: []float64{0.4, 0.3, 0.3}}},
	}
}

// TestBatchEndpointMatchesRun is the end-to-end equivalence pin the CI
// smoke job mirrors: POST /batch results must equal what the engine's
// own Run returns for each compiled request, for every family.
func TestBatchEndpointMatchesRun(t *testing.T) {
	engine := testEngine(t)
	srv := httptest.NewServer(newServer(engineBackend{engine: engine}))
	defer srv.Close()

	reqs := wireRequests()
	resp := postJSON(t, srv, "/batch", wireBatch{Requests: reqs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/batch status %d", resp.StatusCode)
	}
	batch := decode[wireBatchResponse](t, resp)
	if len(batch.Results) != len(reqs) {
		t.Fatalf("%d results for %d requests", len(batch.Results), len(reqs))
	}
	for i, wr := range reqs {
		label := fmt.Sprintf("req %d (%s)", i, wr.Query.Kind)
		if batch.Results[i].Error != "" {
			t.Fatalf("%s: %s", label, batch.Results[i].Error)
		}
		req, err := compileRequest(wr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := engine.Run(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		got := batch.Results[i]
		if len(got.Items) != len(want.Items) {
			t.Fatalf("%s: %d vs %d items", label, len(got.Items), len(want.Items))
		}
		for j, it := range want.Items {
			if got.Items[j].ID != it.ID || got.Items[j].Score != it.Score {
				t.Fatalf("%s item %d: %d/%v vs %d/%v",
					label, j, got.Items[j].ID, got.Items[j].Score, it.ID, it.Score)
			}
		}
		if got.Stats.Kind != want.Stats.Kind.String() || got.Stats.Shards != want.Stats.Shards {
			t.Fatalf("%s stats: %+v vs %+v", label, got.Stats, want.Stats)
		}
	}
}

// TestRunEndpoint pins the single-request path plus cache visibility:
// the second identical POST must report a cache hit with identical
// items.
func TestRunEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer(engineBackend{engine: testEngine(t)}))
	defer srv.Close()

	wr := wireRequest{Dataset: "tuples", K: 5, Query: wireQuery{Kind: "linear", Coeffs: []float64{0.4, 0.3, 0.3}}}
	cold := decode[wireResult](t, postJSON(t, srv, "/run", wr))
	if cold.Error != "" {
		t.Fatal(cold.Error)
	}
	if len(cold.Items) != 5 || cold.Stats.Cache.Hit {
		t.Fatalf("cold run: %+v", cold)
	}
	warm := decode[wireResult](t, postJSON(t, srv, "/run", wr))
	if !warm.Stats.Cache.Hit {
		t.Fatal("repeat run did not hit the cache")
	}
	for i := range cold.Items {
		if warm.Items[i].ID != cold.Items[i].ID || warm.Items[i].Score != cold.Items[i].Score {
			t.Fatalf("hit item %d differs: %+v vs %+v", i, warm.Items[i], cold.Items[i])
		}
	}

	// Geology payloads survive the wire.
	geo := decode[wireResult](t, postJSON(t, srv, "/run", wireRequest{
		Dataset: "basin", K: 3,
		Query: wireQuery{Kind: "geology", Sequence: []string{"shale", "sandstone"}, MaxGapFt: 10, MinGamma: 45},
	}))
	if geo.Error != "" {
		t.Fatal(geo.Error)
	}
	if len(geo.Items) == 0 || len(geo.Items[0].Strata) == 0 {
		t.Fatalf("geology result lost its strata payload: %+v", geo.Items)
	}
}

// TestEndpointErrors pins the HTTP error mapping.
func TestEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(newServer(engineBackend{engine: testEngine(t)}))
	defer srv.Close()

	// Unknown dataset → 404.
	resp := postJSON(t, srv, "/run", wireRequest{Dataset: "nope", K: 3,
		Query: wireQuery{Kind: "linear", Coeffs: []float64{1, 1, 1}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown kind → 400.
	resp = postJSON(t, srv, "/run", wireRequest{Dataset: "tuples", Query: wireQuery{Kind: "wat"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Malformed JSON → 400.
	r2, err := http.Post(srv.URL+"/run", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", r2.StatusCode)
	}
	r2.Body.Close()

	// GET /run → 405.
	r3, err := http.Get(srv.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: status %d", r3.StatusCode)
	}
	r3.Body.Close()

	// A batch with one bad slot still serves the good slots.
	batch := decode[wireBatchResponse](t, postJSON(t, srv, "/batch", wireBatch{Requests: []wireRequest{
		{Dataset: "tuples", K: 3, Query: wireQuery{Kind: "linear", Coeffs: []float64{1, 1, 1}}},
		{Dataset: "tuples", Query: wireQuery{Kind: "wat"}},
	}}))
	if batch.Results[0].Error != "" || len(batch.Results[0].Items) != 3 {
		t.Fatalf("good slot: %+v", batch.Results[0])
	}
	if batch.Results[1].Error == "" {
		t.Fatal("bad slot served")
	}
}

// TestAppendEndpoint drives live ingest over the wire: appended rows
// are queryable the moment /append returns, /stats reports the bumped
// per-dataset generation, the router role ingests through the
// replicated cluster write path, and the error surface (unknown
// dataset, ambiguous payload, partition down) maps to the right
// statuses.
func TestAppendEndpoint(t *testing.T) {
	engine := testEngine(t)
	srv := httptest.NewServer(newServer(newEngineBackend(engine)))
	defer srv.Close()

	wr := wireRequest{Dataset: "tuples", K: 1, Query: wireQuery{Kind: "linear", Coeffs: []float64{0.4, 0.3, 0.3}}}
	before := decode[wireResult](t, postJSON(t, srv, "/run", wr))
	if before.Error != "" {
		t.Fatal(before.Error)
	}

	// Plant a row that dominates every score; the very next query must
	// surface it (id = prior row count) instead of a stale cached answer.
	resp := postJSON(t, srv, "/append", wireAppend{Dataset: "tuples", Tuples: [][]float64{{1e9, 1e9, 1e9}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/append status %d", resp.StatusCode)
	}
	ar := decode[wireAppendResponse](t, resp)
	if ar.Error != "" || ar.Appended != 1 || ar.Gen != 2 {
		t.Fatalf("/append response %+v", ar)
	}
	after := decode[wireResult](t, postJSON(t, srv, "/run", wr))
	if after.Error != "" {
		t.Fatal(after.Error)
	}
	if after.Stats.Cache.Hit || len(after.Items) != 1 || after.Items[0].ID != 3000 {
		t.Fatalf("appended row not served: %+v", after)
	}

	// /stats carries the per-dataset generation and delta count.
	st := decode[wireServerStats](t, func() *http.Response {
		resp, err := http.Get(srv.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}())
	for _, ds := range st.Datasets {
		switch {
		case ds.Name == "tuples" && (ds.Gen != 2 || ds.Rows != 3001):
			t.Fatalf("tuples after append: %+v", ds)
		case ds.Name != "tuples" && ds.Gen != 1:
			t.Fatalf("append to tuples bumped %s: %+v", ds.Name, ds)
		}
	}

	// Unknown dataset → 404; ambiguous payload → 400; empty → 400.
	resp = postJSON(t, srv, "/append", wireAppend{Dataset: "nope", Tuples: [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append to unknown dataset: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, srv, "/append", wireAppend{
		Dataset: "tuples", Tuples: [][]float64{{1, 2, 3}}, Wells: []modelir.WellLog{{Well: 1}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("two payloads: status %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp = postJSON(t, srv, "/append", wireAppend{Dataset: "tuples"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no payload: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// The router role ingests through the replicated cluster write
	// path: the appended row is served through the router immediately,
	// and once every replica of the owning partition is down the
	// append maps to 503 with a Retry-After hint.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := modelir.GenerateTuples(7, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	topo := modelir.ClusterTopology{Nodes: []string{ln.Addr().String()}, Replication: 1}
	node := modelir.NewClusterNode(ln.Addr().String(), topo, modelir.ClusterNodeOptions{Shards: 2})
	if err := node.AddTuples("tuples", pts); err != nil {
		t.Fatal(err)
	}
	node.ServeListener(ln)
	defer node.Close()
	cr := modelir.NewClusterRouter(topo)
	defer cr.Close()
	router := httptest.NewServer(newServer(routerBackend{router: cr, peers: 1}))
	defer router.Close()
	resp = postJSON(t, router, "/append", wireAppend{Dataset: "tuples", Tuples: [][]float64{{1e9, 1e9, 1e9}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router append: status %d", resp.StatusCode)
	}
	ar = decode[wireAppendResponse](t, resp)
	if ar.Error != "" || ar.Appended != 1 || ar.Seq != 1 {
		t.Fatalf("router append response %+v", ar)
	}
	routed := decode[wireResult](t, postJSON(t, router, "/run", wr))
	if routed.Error != "" || len(routed.Items) != 1 || int(routed.Items[0].ID) != len(pts) {
		t.Fatalf("router-appended row not served: %+v", routed)
	}
	node.Kill()
	resp = postJSON(t, router, "/append", wireAppend{Dataset: "tuples", Tuples: [][]float64{{1, 2, 3}}})
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("append with every replica down: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	resp.Body.Close()
}

// TestRouterRoleBatchMatchesSingle is the cluster e2e pin the CI smoke
// job mirrors with real processes: the same /batch against a
// router-role server over two nodes and against a single-role server
// must produce identical items for every family.
func TestRouterRoleBatchMatchesSingle(t *testing.T) {
	cfg := demoConfig{Shards: 2, Tuples: 3000, Scene: 32, Regions: 40, Wells: 30, Seed: 7}
	data, err := buildDemoData(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Bind first so the topology is built from real addresses.
	lns := make([]net.Listener, 2)
	addrs := make([]string, 2)
	for i := range lns {
		if lns[i], err = net.Listen("tcp", "127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		addrs[i] = lns[i].Addr().String()
	}
	topo := modelir.ClusterTopology{Nodes: addrs, Replication: 1}
	for i := range lns {
		n := modelir.NewClusterNode(addrs[i], topo, modelir.ClusterNodeOptions{Shards: cfg.Shards})
		for _, step := range []error{
			n.AddTuples("tuples", data.pts),
			n.AddScene("scene", data.scene),
			n.AddSeries("weather", data.weather),
			n.AddWells("basin", data.wells),
		} {
			if step != nil {
				t.Fatal(step)
			}
		}
		n.ServeListener(lns[i])
		t.Cleanup(n.Close)
	}

	router := httptest.NewServer(newServer(routerBackend{
		router: modelir.NewClusterRouter(topo), peers: len(addrs),
	}))
	defer router.Close()
	single := httptest.NewServer(newServer(engineBackend{engine: testEngine(t)}))
	defer single.Close()

	reqs := wireRequests()
	got := decode[wireBatchResponse](t, postJSON(t, router, "/batch", wireBatch{Requests: reqs}))
	want := decode[wireBatchResponse](t, postJSON(t, single, "/batch", wireBatch{Requests: reqs}))
	for i := range reqs {
		label := fmt.Sprintf("req %d (%s)", i, reqs[i].Query.Kind)
		if got.Results[i].Error != "" || want.Results[i].Error != "" {
			t.Fatalf("%s: router=%q single=%q", label, got.Results[i].Error, want.Results[i].Error)
		}
		g, w := got.Results[i].Items, want.Results[i].Items
		if len(g) != len(w) {
			t.Fatalf("%s: %d vs %d items", label, len(g), len(w))
		}
		for j := range w {
			if g[j].ID != w[j].ID || g[j].Score != w[j].Score {
				t.Fatalf("%s item %d: %d/%v vs %d/%v", label, j, g[j].ID, g[j].Score, w[j].ID, w[j].Score)
			}
		}
	}

	// The router's /stats reports its role, not a phantom engine.
	resp, err := http.Get(router.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[wireServerStats](t, resp)
	if st.Role != "router" || st.Peers != len(addrs) {
		t.Fatalf("router stats %+v", st)
	}
}

// TestStatsEndpoint pins /stats, including the dataset enumeration.
func TestStatsEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer(engineBackend{engine: testEngine(t)}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[wireServerStats](t, resp)
	if st.Epoch != 4 || st.Shards != 4 {
		t.Fatalf("stats %+v", st)
	}
	names := make([]string, len(st.Datasets))
	for i, ds := range st.Datasets {
		names[i] = ds.Name
		if ds.Kind == "" || ds.Rows <= 0 {
			t.Fatalf("dataset %d incomplete: %+v", i, ds)
		}
	}
	if fmt.Sprint(names) != "[basin scene tuples weather]" {
		t.Fatalf("datasets %v, want sorted demo four", names)
	}
}

// TestHealthzReadinessGate pins the boot contract: a server without a
// backend answers 503 on /healthz and every serving endpoint, and
// flips to 200 the moment the backend lands.
func TestHealthzReadinessGate(t *testing.T) {
	s := newServer(nil)
	srv := httptest.NewServer(s)
	defer srv.Close()

	for _, probe := range []struct {
		method, path string
	}{
		{http.MethodGet, "/healthz"},
		{http.MethodGet, "/stats"},
		{http.MethodPost, "/run"},
		{http.MethodPost, "/batch"},
		{http.MethodPost, "/admin/snapshot"},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, bytes.NewReader([]byte("{}")))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s before ready: status %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
	}

	s.setBackend(engineBackend{engine: testEngine(t)}, nil)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	ok := decode[map[string]bool](t, resp)
	if resp.StatusCode != http.StatusOK || !ok["ready"] {
		t.Fatalf("after ready: status %d body %v", resp.StatusCode, ok)
	}
	// Snapshot on demand without -data-dir is refused, not a 500.
	resp = postJSON(t, srv, "/admin/snapshot", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot without persistence: status %d, want 404", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestDataDirBootAndRestore drives the single role's persistence path
// end to end in-process: a first boot builds the demo archives and
// writes the snapshot, a second boot restores from it, and both serve
// identical answers for every family; POST /admin/snapshot re-persists
// on demand.
func TestDataDirBootAndRestore(t *testing.T) {
	cfg := demoConfig{Shards: 4, Tuples: 3000, Scene: 32, Regions: 40, Wells: 30, Seed: 7}
	dataDir := t.TempDir()

	built, snapFn, err := openOrBuildEngine(cfg, dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if snapFn == nil {
		t.Fatal("persistence enabled but no snapshot hook")
	}
	restored, _, err := openOrBuildEngine(cfg, dataDir)
	if err != nil {
		t.Fatalf("second boot did not restore: %v", err)
	}
	defer restored.Close()

	bs := httptest.NewServer(newServer(engineBackend{engine: built}))
	defer bs.Close()
	rs := httptest.NewServer(newServer(engineBackend{engine: restored}))
	defer rs.Close()
	reqs := wireRequests()
	want := decode[wireBatchResponse](t, postJSON(t, bs, "/batch", wireBatch{Requests: reqs}))
	got := decode[wireBatchResponse](t, postJSON(t, rs, "/batch", wireBatch{Requests: reqs}))
	for i := range reqs {
		label := fmt.Sprintf("req %d (%s)", i, reqs[i].Query.Kind)
		if got.Results[i].Error != "" || want.Results[i].Error != "" {
			t.Fatalf("%s: restored=%q built=%q", label, got.Results[i].Error, want.Results[i].Error)
		}
		g, w := got.Results[i].Items, want.Results[i].Items
		if len(g) != len(w) {
			t.Fatalf("%s: %d vs %d items", label, len(g), len(w))
		}
		for j := range w {
			if g[j].ID != w[j].ID || g[j].Score != w[j].Score {
				t.Fatalf("%s item %d: %d/%v vs %d/%v", label, j, g[j].ID, g[j].Score, w[j].ID, w[j].Score)
			}
		}
	}

	// On-demand snapshot over the built engine succeeds.
	s := newServer(nil)
	s.setBackend(engineBackend{engine: built}, snapFn)
	as := httptest.NewServer(s)
	defer as.Close()
	resp := postJSON(t, as, "/admin/snapshot", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/admin/snapshot: status %d", resp.StatusCode)
	}
	out := decode[map[string]any](t, resp)
	if out["ok"] != true {
		t.Fatalf("/admin/snapshot body %v", out)
	}
}

// TestDebugMuxServesPprof is the -debug-addr smoke test: the debug mux
// serves the pprof index and the registered profile dumps, and is a
// separate handler from the serving surface (no /run, /batch, /stats).
func TestDebugMuxServesPprof(t *testing.T) {
	srv := httptest.NewServer(newDebugMux())
	defer srv.Close()

	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/heap?debug=1",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty body", path)
		}
	}
	// The serving endpoints must NOT exist on the debug surface.
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug mux serves /stats (status %d); serving and debug surfaces must stay separate", resp.StatusCode)
	}
}
