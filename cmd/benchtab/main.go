// benchtab regenerates the paper's evaluation tables (experiments E1-E8,
// see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	benchtab            # run all experiments at full scale
//	benchtab -e e1,e5   # run selected experiments
//	benchtab -quick     # small data sizes (seconds instead of minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"modelir/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	expList := fs.String("e", "all", "comma-separated ids (e1..e8 experiments, a1..a4 ablations), all, or ablations")
	quick := fs.Bool("quick", false, "shrink data sizes for a fast smoke run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick}

	var tables []experiments.Table
	switch *expList {
	case "all":
		all, err := experiments.All(cfg)
		if err != nil {
			return err
		}
		tables = all
	case "ablations":
		abl, err := experiments.Ablations(cfg)
		if err != nil {
			return err
		}
		tables = abl
	default:
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			runner, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e8)", id)
			}
			tbl, err := runner(cfg)
			if err != nil {
				return err
			}
			tables = append(tables, tbl)
		}
	}
	for _, t := range tables {
		printTable(t)
	}
	return nil
}

func printTable(t experiments.Table) {
	fmt.Printf("== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Println("  note:", n)
	}
	fmt.Println()
}
