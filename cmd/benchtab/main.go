// benchtab regenerates the paper's evaluation tables (experiments E1-E8
// plus the shard-scaling sweep E9; see DESIGN.md §3 and EXPERIMENTS.md).
//
// Usage:
//
//	benchtab                             # run all experiments at full scale
//	benchtab -e e1,e5                    # run selected experiments
//	benchtab -quick                      # small data sizes (seconds instead of minutes)
//	benchtab -shardjson BENCH_shards.json  # also write the shard-scaling baseline
//	benchtab -servejson BENCH_serve.json   # also write the serving-layer baseline
//	benchtab -memjson BENCH_mem.json       # also write the scan-bound memory baseline
//	benchtab -kerneljson BENCH_kernels.json  # also write the per-family scan-kernel baseline
//	benchtab -clusterjson BENCH_cluster.json # also write the multi-node cluster baseline
//	benchtab -persistjson BENCH_persist.json # also write the snapshot/restore durability baseline
//	benchtab -ingestjson BENCH_ingest.json   # also write the live-ingest baseline
//	benchtab -clusteringestjson BENCH_clusteringest.json # also write the replicated cluster-ingest baseline
//	benchtab -resyncjson BENCH_resync.json   # also write the snapshot-resync (log-pruned recovery) baseline
//	benchtab -cpuprofile cpu.pprof       # profile the run (go tool pprof)
//	benchtab -memprofile mem.pprof       # heap profile at exit
//	benchtab -timeout 30s                # bound the run with a context deadline
//
// -timeout wires a context.WithTimeout through the experiment driver:
// the shard sweep cancels its Engine.Run queries mid-shard when the
// deadline fires and records the cancellation in the -shardjson
// artifact (cancelled/cancel_error fields); remaining experiments are
// skipped. A timed-out run prints what completed and exits 0 — the
// deadline is an operational bound, not a failure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"modelir/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	expList := fs.String("e", "all", "comma-separated ids (e1..e9 experiments, a1..a4 ablations), all, or ablations")
	quick := fs.Bool("quick", false, "shrink data sizes for a fast smoke run")
	shardJSON := fs.String("shardjson", "", "write the shard-scaling baseline (ShardBaseline JSON) to this path")
	serveJSON := fs.String("servejson", "", "write the serving-layer baseline (ServeBaseline JSON: cache hit-vs-cold, batch-vs-solo) to this path")
	memJSON := fs.String("memjson", "", "write the scan-bound memory baseline (MemBaseline JSON: columnar vs row-layout ns/op, B/op, allocs/op) to this path")
	kernelJSON := fs.String("kerneljson", "", "write the per-family scan-kernel baseline (KernelBaseline JSON: columnar vs PR4-reference ns/op, allocs/op, steal speedups) to this path")
	clusterJSON := fs.String("clusterjson", "", "write the multi-node cluster baseline (ClusterBaseline JSON: scatter-gather ns/req at node counts 1-3 plus the equivalence bit) to this path")
	persistJSON := fs.String("persistjson", "", "write the durability baseline (PersistBaseline JSON: snapshot write time, cold-start restore Copy vs Map, restore-equivalence bit) to this path")
	ingestJSON := fs.String("ingestjson", "", "write the live-ingest baseline (IngestBaseline JSON: mixed append+query throughput, appender flush count, delta-equivalence bit) to this path")
	clusterIngestJSON := fs.String("clusteringestjson", "", "write the replicated cluster-ingest baseline (ClusterIngestBaseline JSON: mixed append+query throughput at node counts 1-3, kill+recover cycle time, fault-cycle equivalence bit) to this path")
	resyncJSON := fs.String("resyncjson", "", "write the snapshot-resync baseline (ResyncBaseline JSON: log-pruned recovery bytes streamed, wall time, replica-alone equivalence bit) to this path")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	memProfile := fs.String("memprofile", "", "write a heap profile at exit to this path")
	timeout := fs.Duration("timeout", 0, "overall deadline; cancels in-flight queries mid-shard and records it in -shardjson (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the steady-state heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "benchtab: memprofile:", err)
			}
		}()
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	cfg := experiments.Config{Quick: *quick, Ctx: ctx, Timeout: *timeout}
	// Validate the -e selection before any benchmark work (including
	// the -shardjson sweep) so a typo'd id fails fast instead of after
	// minutes of timing runs.
	if *expList != "all" && *expList != "ablations" {
		for _, id := range strings.Split(*expList, ",") {
			if _, ok := experiments.ByID(strings.TrimSpace(id)); !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e9 or a1..a4)", id)
			}
		}
	}
	if *shardJSON != "" {
		if err := experiments.WriteShardBaseline(cfg, *shardJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *shardJSON)
	}
	if *serveJSON != "" {
		if err := experiments.WriteServeBaseline(cfg, *serveJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *serveJSON)
	}
	if *memJSON != "" {
		if err := experiments.WriteMemBaseline(cfg, *memJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *memJSON)
	}
	if *kernelJSON != "" {
		if err := experiments.WriteKernelBaseline(cfg, *kernelJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *kernelJSON)
	}
	if *clusterJSON != "" {
		if err := experiments.WriteClusterBaseline(cfg, *clusterJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *clusterJSON)
	}
	if *persistJSON != "" {
		if err := experiments.WritePersistBaseline(cfg, *persistJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *persistJSON)
	}
	if *ingestJSON != "" {
		if err := experiments.WriteIngestBaseline(cfg, *ingestJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *ingestJSON)
	}
	if *clusterIngestJSON != "" {
		if err := experiments.WriteClusterIngestBaseline(cfg, *clusterIngestJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *clusterIngestJSON)
	}
	if *resyncJSON != "" {
		if err := experiments.WriteResyncBaseline(cfg, *resyncJSON); err != nil {
			return err
		}
		fmt.Println("wrote", *resyncJSON)
	}

	var tables []experiments.Table
	var runErr error
	switch *expList {
	case "all":
		tables, runErr = experiments.All(cfg)
	case "ablations":
		tables, runErr = experiments.Ablations(cfg)
	default:
		for _, id := range strings.Split(*expList, ",") {
			id = strings.TrimSpace(id)
			runner, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (want e1..e9 or a1..a4)", id)
			}
			if runErr = ctx.Err(); runErr != nil {
				break // deadline fired between experiments
			}
			var tbl experiments.Table
			tbl, runErr = runner(cfg)
			if runErr != nil {
				break
			}
			tables = append(tables, tbl)
		}
	}
	for _, t := range tables {
		printTable(t)
	}
	if runErr != nil {
		// A fired deadline is an operational bound the caller asked
		// for, not a failure: report what completed and exit clean.
		if ce := ctx.Err(); ce != nil && errors.Is(runErr, ce) {
			fmt.Printf("timeout %v reached (%v): %d experiment table(s) completed before cancellation\n",
				*timeout, ce, len(tables))
			return nil
		}
		return runErr
	}
	return nil
}

func printTable(t experiments.Table) {
	fmt.Printf("== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			fmt.Fprintf(&b, "%-*s", widths[i]+2, cell)
		}
		fmt.Println(strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Println("  note:", n)
	}
	fmt.Println()
}
