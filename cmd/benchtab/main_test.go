package main

import (
	"encoding/json"
	"os"
	"testing"

	"modelir/internal/experiments"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil {
		t.Fatal("want unknown experiment error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

func TestRunSelectedQuick(t *testing.T) {
	// One cheap experiment end-to-end through the printer.
	if err := run([]string{"-quick", "-e", "e3"}); err != nil {
		t.Fatalf("e3 quick: %v", err)
	}
	if err := run([]string{"-quick", "-e", "a3"}); err != nil {
		t.Fatalf("a3 quick: %v", err)
	}
}

func TestRunTimeoutRecordsCancellation(t *testing.T) {
	// A microscopic deadline cancels the sweep mid-shard; the artifact
	// must still be written, recording the cancellation, and the run
	// must exit cleanly (a fired deadline is not a failure).
	path := t.TempDir() + "/shards.json"
	if err := run([]string{"-quick", "-timeout", "1ns", "-e", "e9", "-shardjson", path}); err != nil {
		t.Fatalf("timed-out run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.ShardBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if !base.Cancelled || base.CancelError == "" {
		t.Fatalf("cancellation not recorded: %+v", base)
	}
	if base.TimeoutMS != 0 { // 1ns rounds to 0ms; the field still records intent
		t.Fatalf("timeout_ms = %d", base.TimeoutMS)
	}
}
