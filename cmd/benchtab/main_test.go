package main

import "testing"

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil {
		t.Fatal("want unknown experiment error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

func TestRunSelectedQuick(t *testing.T) {
	// One cheap experiment end-to-end through the printer.
	if err := run([]string{"-quick", "-e", "e3"}); err != nil {
		t.Fatalf("e3 quick: %v", err)
	}
	if err := run([]string{"-quick", "-e", "a3"}); err != nil {
		t.Fatalf("a3 quick: %v", err)
	}
}
