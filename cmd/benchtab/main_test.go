package main

import (
	"encoding/json"
	"os"
	"testing"

	"modelir/internal/experiments"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil {
		t.Fatal("want unknown experiment error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

func TestRunSelectedQuick(t *testing.T) {
	// One cheap experiment end-to-end through the printer.
	if err := run([]string{"-quick", "-e", "e3"}); err != nil {
		t.Fatalf("e3 quick: %v", err)
	}
	if err := run([]string{"-quick", "-e", "a3"}); err != nil {
		t.Fatalf("a3 quick: %v", err)
	}
}

func TestRunTimeoutRecordsCancellation(t *testing.T) {
	// A microscopic deadline cancels the sweep mid-shard; the artifact
	// must still be written, recording the cancellation, and the run
	// must exit cleanly (a fired deadline is not a failure).
	path := t.TempDir() + "/shards.json"
	if err := run([]string{"-quick", "-timeout", "1ns", "-e", "e9", "-shardjson", path}); err != nil {
		t.Fatalf("timed-out run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.ShardBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if !base.Cancelled || base.CancelError == "" {
		t.Fatalf("cancellation not recorded: %+v", base)
	}
	if base.TimeoutMS != 0 { // 1ns rounds to 0ms; the field still records intent
		t.Fatalf("timeout_ms = %d", base.TimeoutMS)
	}
}

func TestRunMemBaseline(t *testing.T) {
	// -memjson writes the scan-bound memory baseline; the allocs==0
	// gate itself lives in CI's non-race benchtab run (sync.Pool drops
	// puts under the race detector), so here we pin shape and sanity.
	path := t.TempDir() + "/mem.json"
	if err := run([]string{"-quick", "-e", "e3", "-memjson", path}); err != nil {
		t.Fatalf("memjson run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.MemBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.RowScanNsPerOp <= 0 || base.ColScanNsPerOp <= 0 || base.EngineNsPerQuery <= 0 {
		t.Fatalf("timings not populated: %+v", base)
	}
	if base.SpeedupVsRow <= 0 {
		t.Fatalf("speedup not recorded: %+v", base)
	}
	if base.PointsTouched+base.PointsZonePruned > base.Tuples {
		t.Fatalf("pruning accounting exceeds archive: %+v", base)
	}
}
