package main

import (
	"encoding/json"
	"os"
	"testing"

	"modelir/internal/experiments"
)

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-e", "e99"}); err == nil {
		t.Fatal("want unknown experiment error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Fatal("want flag parse error")
	}
}

func TestRunSelectedQuick(t *testing.T) {
	// One cheap experiment end-to-end through the printer.
	if err := run([]string{"-quick", "-e", "e3"}); err != nil {
		t.Fatalf("e3 quick: %v", err)
	}
	if err := run([]string{"-quick", "-e", "a3"}); err != nil {
		t.Fatalf("a3 quick: %v", err)
	}
}

func TestRunTimeoutRecordsCancellation(t *testing.T) {
	// A microscopic deadline cancels the sweep mid-shard; the artifact
	// must still be written, recording the cancellation, and the run
	// must exit cleanly (a fired deadline is not a failure).
	path := t.TempDir() + "/shards.json"
	if err := run([]string{"-quick", "-timeout", "1ns", "-e", "e9", "-shardjson", path}); err != nil {
		t.Fatalf("timed-out run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.ShardBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if !base.Cancelled || base.CancelError == "" {
		t.Fatalf("cancellation not recorded: %+v", base)
	}
	if base.TimeoutMS != 0 { // 1ns rounds to 0ms; the field still records intent
		t.Fatalf("timeout_ms = %d", base.TimeoutMS)
	}
}

func TestRunMemBaseline(t *testing.T) {
	// -memjson writes the scan-bound memory baseline; the allocs==0
	// gate itself lives in CI's non-race benchtab run (sync.Pool drops
	// puts under the race detector), so here we pin shape and sanity.
	path := t.TempDir() + "/mem.json"
	if err := run([]string{"-quick", "-e", "e3", "-memjson", path}); err != nil {
		t.Fatalf("memjson run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.MemBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	if base.RowScanNsPerOp <= 0 || base.ColScanNsPerOp <= 0 || base.EngineNsPerQuery <= 0 {
		t.Fatalf("timings not populated: %+v", base)
	}
	if base.SpeedupVsRow <= 0 {
		t.Fatalf("speedup not recorded: %+v", base)
	}
	if base.PointsTouched+base.PointsZonePruned > base.Tuples {
		t.Fatalf("pruning accounting exceeds archive: %+v", base)
	}
}

func TestRunKernelBaseline(t *testing.T) {
	// -kerneljson writes the per-family scan-kernel baseline; the
	// allocs==0 and scene-speedup gates live in CI's non-race benchtab
	// run (sync.Pool drops puts under the race detector), so here we
	// pin shape, coverage and the equality bits.
	path := t.TempDir() + "/kernels.json"
	if err := run([]string{"-quick", "-e", "e3", "-kerneljson", path}); err != nil {
		t.Fatalf("kerneljson run failed: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var base experiments.KernelBaseline
	if err := json.Unmarshal(data, &base); err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"linear": false, "scene": false, "fsm": false,
		"fsm-distance": false, "geology": false, "knowledge": false,
	}
	for _, f := range base.Families {
		if _, ok := want[f.Family]; !ok {
			t.Fatalf("unexpected family %q", f.Family)
		}
		want[f.Family] = true
		if f.NsPerOp <= 0 || f.RefNsPerOp <= 0 {
			t.Fatalf("%s: timings not populated: %+v", f.Family, f)
		}
		if !f.Identical {
			t.Fatalf("%s: columnar scan diverged from reference", f.Family)
		}
	}
	for fam, seen := range want {
		if !seen {
			t.Fatalf("family %q missing from baseline", fam)
		}
	}
	if base.StealSpeedup1W <= 0 || base.StealSpeedup2W <= 0 || base.StealSpeedup4W <= 0 {
		t.Fatalf("steal ratios not populated: %+v", base)
	}
}

func TestRunProfiles(t *testing.T) {
	// -cpuprofile/-memprofile write non-empty pprof files.
	dir := t.TempDir()
	cpu, mem := dir+"/cpu.pprof", dir+"/mem.pprof"
	if err := run([]string{"-quick", "-e", "e3", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatalf("profiled run failed: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
