package main

import (
	"path/filepath"
	"testing"
)

func TestRunRejectsBadInvocations(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("want missing subcommand error")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Fatal("want unknown subcommand error")
	}
	if err := run([]string{"geology", "-method", "bogus"}); err == nil {
		t.Fatal("want unknown method error")
	}
	if err := run([]string{"tuples", "-w", "not-a-number"}); err == nil {
		t.Fatal("want weight parse error")
	}
	if err := run([]string{"query-hps", "-archive", "/nonexistent/x.gob"}); err == nil {
		t.Fatal("want archive open error")
	}
}

func TestSceneRoundTripViaCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scene.gob")
	if err := run([]string{"gen-scene", "-size", "64", "-out", path}); err != nil {
		t.Fatalf("gen-scene: %v", err)
	}
	if err := run([]string{"query-hps", "-archive", path, "-k", "3"}); err != nil {
		t.Fatalf("query-hps: %v", err)
	}
}

func TestGeneratorSubcommands(t *testing.T) {
	if err := run([]string{"tuples", "-n", "2000", "-k", "3"}); err != nil {
		t.Fatalf("tuples: %v", err)
	}
	if err := run([]string{"fireants", "-regions", "30", "-days", "200", "-k", "3"}); err != nil {
		t.Fatalf("fireants: %v", err)
	}
	for _, method := range []string{"brute", "dp", "pruned"} {
		if err := run([]string{"geology", "-wells", "20", "-k", "3", "-method", method}); err != nil {
			t.Fatalf("geology %s: %v", method, err)
		}
	}
}
