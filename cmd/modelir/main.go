// modelir is the command-line front end of the model-based retrieval
// library: generate synthetic archives, build progressive scene archives
// on disk, and run model queries against them.
//
// Usage:
//
//	modelir gen-scene  -out scene.gob [-seed 7] [-size 512]
//	modelir query-hps  -archive scene.gob [-k 10]
//	modelir fireants   [-regions 500] [-days 730] [-k 10]
//	modelir geology    [-wells 300] [-k 10] [-method dp|pruned|brute]
//	modelir tuples     [-n 100000] [-k 10] [-w 0.4,0.3,0.3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"modelir"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "modelir:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("missing subcommand (gen-scene, query-hps, fireants, geology, tuples)")
	}
	switch args[0] {
	case "gen-scene":
		return genScene(args[1:])
	case "query-hps":
		return queryHPS(args[1:])
	case "fireants":
		return fireAnts(args[1:])
	case "geology":
		return geology(args[1:])
	case "tuples":
		return tuples(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func genScene(args []string) error {
	fs := flag.NewFlagSet("gen-scene", flag.ContinueOnError)
	out := fs.String("out", "scene.gob", "output archive path")
	seed := fs.Int64("seed", 7, "generator seed")
	size := fs.Int("size", 512, "scene width and height")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scene, err := modelir.GenerateScene(modelir.SceneConfig{Seed: *seed, W: *size, H: *size})
	if err != nil {
		return err
	}
	arch, err := modelir.BuildSceneArchive("scene", scene.Bands, modelir.ArchiveOptions{})
	if err != nil {
		return err
	}
	if err := arch.Save(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %dx%d scene archive (%d bands, %d tiles, %d pyramid levels) to %s\n",
		arch.W, arch.H, arch.NumBands(), len(arch.Tiles), arch.Pyramid().NumLevels(), *out)
	return nil
}

// queryCtx builds the execution context for a query subcommand's
// -timeout flag (0 = no deadline).
func queryCtx(timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), timeout)
}

func queryHPS(args []string) error {
	fs := flag.NewFlagSet("query-hps", flag.ContinueOnError)
	path := fs.String("archive", "scene.gob", "scene archive path")
	k := fs.Int("k", 10, "number of results")
	timeout := fs.Duration("timeout", 0, "query deadline (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := modelir.LoadSceneArchive(*path)
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddScene("scene", arch); err != nil {
		return err
	}
	prog, err := modelir.DecomposeLinear(modelir.HPSRiskModel(),
		[]float64{0, 0, 0, 0}, []float64{255, 255, 255, 1500}, 2, 4)
	if err != nil {
		return err
	}
	ctx, cancel := queryCtx(*timeout)
	defer cancel()
	res, err := engine.Run(ctx, modelir.Request{
		Dataset: "scene",
		Query:   modelir.SceneQuery{Model: prog},
		K:       *k,
	})
	if err != nil {
		return err
	}
	fmt.Printf("top-%d HPS risk locations in %s:\n", *k, *path)
	for i, it := range res.Items {
		fmt.Printf("  %2d. (%4d,%4d)  R = %.2f\n",
			i+1, int(it.ID)%arch.W, int(it.ID)/arch.W, it.Score)
	}
	flat := arch.W * arch.H * 4
	fmt.Printf("work: %d term evals in %v (flat would be %d; %.1fx saved)\n",
		res.Stats.Evaluations, res.Stats.Wall.Round(time.Microsecond), flat,
		float64(flat)/float64(res.Stats.Evaluations))
	return nil
}

func fireAnts(args []string) error {
	fs := flag.NewFlagSet("fireants", flag.ContinueOnError)
	regions := fs.Int("regions", 500, "number of regions")
	days := fs.Int("days", 730, "days per region")
	k := fs.Int("k", 10, "number of results")
	seed := fs.Int64("seed", 11, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	arch, err := modelir.GenerateWeather(modelir.WeatherConfig{
		Seed: *seed, Regions: *regions, Days: *days,
	})
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddSeries("w", arch); err != nil {
		return err
	}
	res, err := engine.Run(context.Background(), modelir.Request{
		Dataset: "w",
		Query:   modelir.FSMQuery{Machine: modelir.FireAntsModel(), Prefilter: modelir.FireAntsPrefilter},
		K:       *k,
	})
	if err != nil {
		return err
	}
	fmt.Printf("top-%d fire-ant fly-risk regions (%d/%d regions pruned from metadata):\n",
		*k, res.Stats.Pruned, res.Stats.Pruned+res.Stats.Examined)
	for i, it := range res.Items {
		fmt.Printf("  %2d. region %4d  score %.3f\n", i+1, it.ID, it.Score)
	}
	return nil
}

func geology(args []string) error {
	fs := flag.NewFlagSet("geology", flag.ContinueOnError)
	wells := fs.Int("wells", 300, "number of wells")
	k := fs.Int("k", 10, "number of results")
	method := fs.String("method", "dp", "evaluator: brute, dp or pruned")
	seed := fs.Int64("seed", 21, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var m modelir.GeologyMethod
	switch *method {
	case "brute":
		m = modelir.GeoBruteForce
	case "dp":
		m = modelir.GeoDP
	case "pruned":
		m = modelir.GeoPruned
	default:
		return fmt.Errorf("unknown method %q", *method)
	}
	ws, _, err := modelir.GenerateWells(modelir.WellConfig{Seed: *seed, Wells: *wells})
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddWells("basin", ws); err != nil {
		return err
	}
	res, err := engine.Run(context.Background(), modelir.Request{
		Dataset: "basin",
		Query: modelir.GeologyQuery{
			Sequence: []modelir.Lithology{modelir.Shale, modelir.Sandstone, modelir.Siltstone},
			MaxGapFt: 10,
			MinGamma: 45,
			Method:   m,
		},
		K: *k,
	})
	if err != nil {
		return err
	}
	fmt.Printf("top-%d riverbed wells (%s, %d unary+pair evals):\n", *k, *method, res.Stats.Evaluations)
	for i, it := range res.Items {
		fmt.Printf("  %2d. well %4d  score %.3f\n", i+1, it.ID, it.Score)
	}
	return nil
}

func tuples(args []string) error {
	fs := flag.NewFlagSet("tuples", flag.ContinueOnError)
	n := fs.Int("n", 100_000, "number of tuples")
	k := fs.Int("k", 10, "number of results")
	weights := fs.String("w", "0.443,0.222,0.153", "comma-separated model weights")
	seed := fs.Int64("seed", 42, "generator seed")
	timeout := fs.Duration("timeout", 0, "query deadline (0 = none)")
	budget := fs.Int("budget", 0, "max points the query may score (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var ws []float64
	for _, s := range strings.Split(*weights, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return fmt.Errorf("bad weight %q: %w", s, err)
		}
		ws = append(ws, v)
	}
	pts, err := modelir.GenerateTuples(*seed, *n, len(ws))
	if err != nil {
		return err
	}
	engine := modelir.NewEngine()
	if err := engine.AddTuples("t", pts); err != nil {
		return err
	}
	attrs := make([]string, len(ws))
	for i := range attrs {
		attrs[i] = fmt.Sprintf("x%d", i+1)
	}
	model, err := modelir.NewLinearModel(attrs, ws, 0)
	if err != nil {
		return err
	}
	ctx, cancel := queryCtx(*timeout)
	defer cancel()
	res, err := engine.Run(ctx, modelir.Request{
		Dataset: "t",
		Query:   modelir.LinearQuery{Model: model},
		K:       *k,
		Budget:  *budget,
	})
	if err != nil {
		return err
	}
	truncated := ""
	if res.Stats.Truncated {
		truncated = ", budget exhausted — best-effort results"
	}
	fmt.Printf("top-%d of %d tuples (index touched %d points in %v%s):\n",
		*k, *n, res.Stats.Examined, res.Stats.Wall.Round(time.Microsecond), truncated)
	for i, it := range res.Items {
		fmt.Printf("  %2d. tuple %7d  score %.4f\n", i+1, it.ID, it.Score)
	}
	return nil
}
